//! Failure-injection and back-pressure tests: the system must degrade
//! gracefully (or fail loudly and precisely) when pushed past its
//! resource limits, and recover transparently from injected transport
//! and storage faults.

use asan_core::active::{ActiveSwitch, ActiveSwitchConfig};
use asan_core::cluster::{
    Cluster, ClusterConfig, Dest, FileId, HostCtx, HostMsg, HostProgram, ReqId,
};
use asan_core::handler::{Handler, HandlerCtx};
use asan_core::SimError;
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, Header, LinkConfig, NodeId, Packet};
use asan_sim::faults::{FaultPlan, HandlerTrap};
use asan_sim::{SimDuration, SimTime};

fn single_switch(hosts: usize) -> (TopologyBuilder, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let hs: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
    for &h in &hs {
        b.connect(h, sw, LinkConfig::paper());
    }
    (b, hs, sw)
}

/// One switch, one host, one TCA — the standard storage topology.
fn storage_cluster() -> (TopologyBuilder, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let h = b.add_host();
    let t = b.add_tca();
    b.connect(h, sw, LinkConfig::paper());
    b.connect(t, sw, LinkConfig::paper());
    (b, h, t, sw)
}

/// Reads one region into host memory and finishes.
struct OneRead {
    file: FileId,
    len: u64,
}
impl HostProgram for OneRead {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.read_file(self.file, 0, self.len, Dest::HostBuf { addr: 0x1000_0000 });
    }
    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
        ctx.finish();
    }
}

/// Counts matching bytes on the switch, sends only the count home.
struct CountHandler {
    needle: u8,
    host: NodeId,
    count: u64,
    total: u64,
    expect: u64,
}
impl Handler for CountHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        self.count += data.iter().filter(|&&b| b == self.needle).count() as u64;
        self.total += data.len() as u64;
        if self.total >= self.expect {
            ctx.send(self.host, None, 0, &self.count.to_le_bytes());
        }
    }
}

/// Issues an active (mapped) read and records the handler's answer.
struct ActiveCount {
    file: FileId,
    sw: NodeId,
    result: Option<u64>,
}
impl HostProgram for ActiveCount {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let len = ctx.file_len(self.file);
        ctx.read_file(
            self.file,
            0,
            len,
            Dest::Mapped {
                node: self.sw,
                handler: HandlerId::new(1),
                base_addr: 0,
            },
        );
    }
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        self.result = Some(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        ctx.finish();
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A handler that hoards buffers: the DBA must stall its allocations
/// rather than hand out overlapping buffers, and the pipeline must
/// still make forward progress.
#[test]
fn buffer_hoarding_backpressures_but_progresses() {
    struct Hoarder {
        held: Vec<asan_core::BufId>,
        invocations: u32,
    }
    impl Handler for Hoarder {
        fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
            let _ = ctx.payload();
            // Hold up to 12 of the 16 buffers indefinitely.
            if self.held.len() < 12 {
                self.held.push(ctx.alloc_buffer());
            }
            self.invocations += 1;
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
    sw.register(
        HandlerId::new(1),
        Box::new(Hoarder {
            held: Vec::new(),
            invocations: 0,
        }),
    );
    let mut last_done = SimTime::ZERO;
    for i in 0..40u32 {
        let pkt = Packet::new(
            Header {
                src: NodeId(1),
                dst: NodeId(0),
                len: 512,
                handler: Some(HandlerId::new(1)),
                addr: (i % 16) * 512,
                seq: i,
            },
            vec![0; 512],
        );
        let t = SimTime::from_us(i as u64 * 2);
        let r = sw.dispatch(&pkt, t, t, t + SimDuration::from_ns(512));
        assert!(r.done >= last_done, "time went backwards");
        last_done = r.done;
    }
    // 12 hoarded + in-flight inputs stayed within the file; the
    // remaining invocations still completed.
    assert!(sw.dba().alloc_waits() == 0 || sw.dba().occupancy().max().unwrap() <= 16);
    let h = sw.take_handler(HandlerId::new(1)).unwrap();
    let hoarder = h
        .as_any()
        .and_then(|a| a.downcast_ref::<Hoarder>())
        .unwrap();
    assert_eq!(hoarder.invocations, 40, "pipeline stalled permanently");
}

/// Dispatching a message whose handler was never registered is a
/// protocol violation and must fail loudly, not drop silently.
#[test]
#[should_panic(expected = "no handler registered")]
fn unregistered_handler_fails_loudly() {
    let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
    let pkt = Packet::new(
        Header {
            src: NodeId(1),
            dst: NodeId(0),
            len: 0,
            handler: Some(HandlerId::new(9)),
            addr: 0,
            seq: 0,
        },
        Vec::new(),
    );
    sw.dispatch(&pkt, SimTime::ZERO, SimTime::ZERO, SimTime::ZERO);
}

/// The event-count guard converts a runaway message loop into a
/// structured, matchable error instead of an endless simulation.
#[test]
fn livelock_guard_trips() {
    struct PingPong {
        peer: NodeId,
    }
    impl HostProgram for PingPong {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.send(self.peer, None, 0, vec![1]);
        }
        fn on_message(&mut self, ctx: &mut HostCtx<'_>, _msg: &HostMsg) {
            // Reply forever: a protocol bug.
            ctx.send(self.peer, None, 0, vec![1]);
        }
    }
    let (topo, hs, _) = single_switch(2);
    let mut cfg = ClusterConfig::paper();
    cfg.max_events = 10_000;
    let mut cl = Cluster::new(topo, cfg);
    cl.set_program(hs[0], Box::new(PingPong { peer: hs[1] }))
        .unwrap();
    cl.set_program(hs[1], Box::new(PingPong { peer: hs[0] }))
        .unwrap();
    let err = cl.run().unwrap_err();
    assert!(
        matches!(err, SimError::EventLimitExceeded { limit: 10_000, .. }),
        "wrong error: {err}"
    );
    assert!(err.to_string().contains("livelock"));
}

/// Misusing the topology — installing a program on a non-host node —
/// is reported as a structured error, not a panic.
#[test]
fn wrong_node_kind_is_a_structured_error() {
    let (topo, _hs, sw) = single_switch(1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let err = cl.add_file(sw, vec![0u8; 64]).unwrap_err();
    assert_eq!(err, SimError::NotATca(sw));
    let err = cl
        .set_program(
            sw,
            Box::new(OneRead {
                file: FileId(0),
                len: 1,
            }),
        )
        .unwrap_err();
    assert_eq!(err, SimError::NotAHost(sw));
}

/// Reading past a file's end is caught at issue time.
#[test]
#[should_panic(expected = "read beyond file end")]
fn read_past_eof_rejected() {
    struct BadReader {
        file: FileId,
    }
    impl HostProgram for BadReader {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let len = ctx.file_len(self.file);
            ctx.read_file(self.file, len, 1, Dest::HostBuf { addr: 0 });
        }
    }
    let (topo, h, t, _sw) = storage_cluster();
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let file = cl.add_file(t, vec![0u8; 100]).unwrap();
    cl.set_program(h, Box::new(BadReader { file })).unwrap();
    let _ = cl.run();
}

/// A slow receiver exhausts link credits; the sender stalls but the
/// fabric stays consistent and every byte is eventually carried.
#[test]
fn credit_exhaustion_is_transient() {
    use asan_net::link::{Link, LinkConfig};
    let cfg = LinkConfig {
        credits: 2,
        ..LinkConfig::paper()
    };
    let mut l = Link::new(cfg);
    // Receiver drains each packet 10 µs after it arrives.
    let mut drains: Vec<SimTime> = Vec::new();
    let mut total = 0u64;
    for i in 0..50u64 {
        let t = l.send(528, SimTime::from_ns(i * 100));
        drains.push(t.done + SimDuration::from_us(10));
        l.note_drain(*drains.last().unwrap());
        total += 528;
    }
    assert_eq!(l.bytes_carried(), total);
    assert!(l.credit_stalls() > 0, "expected credit pressure");
    // Throughput degraded to the receiver's drain rate, not to zero.
    let span = drains.last().unwrap().since(SimTime::ZERO);
    assert!(span.as_us() >= 10 * 48 / 2, "span = {span}");
}

/// Zero-length reads are rejected before they corrupt schedules.
#[test]
#[should_panic(expected = "zero-length read")]
fn zero_length_read_rejected() {
    use asan_io::storage::{Storage, StorageConfig};
    let mut s = Storage::new(StorageConfig::paper());
    s.read_stream(0, 0, SimTime::ZERO);
}

// ---------------------------------------------------------------------
// Fault injection and recovery
// ---------------------------------------------------------------------

const FILE_BYTES: u64 = 256 * 1024;

fn faulted_read_run(plan: FaultPlan) -> (Cluster, SimTime) {
    let (topo, h, t, _sw) = storage_cluster();
    let mut cfg = ClusterConfig::paper();
    cfg.faults = Some(plan);
    let mut cl = Cluster::new(topo, cfg);
    let file = cl.add_file(t, vec![0x5A; FILE_BYTES as usize]).unwrap();
    cl.set_program(
        h,
        Box::new(OneRead {
            file,
            len: FILE_BYTES,
        }),
    )
    .unwrap();
    let r = cl.run().expect("run must recover from injected faults");
    let finish = r.finish;
    let bytes_in = r.host(h).unwrap().payload.bytes_in;
    assert_eq!(
        bytes_in, FILE_BYTES,
        "host must receive every byte exactly once"
    );
    (cl, finish)
}

/// Bit-corrupted packets are caught by the ICRC check, NAKed, and
/// retransmitted from the TCA's buffer cache until the full read lands.
#[test]
fn corruption_detected_and_recovered_via_nak() {
    let mut plan = FaultPlan::quiet(11);
    plan.packet_corrupt_prob = 0.2;
    let (cl, _) = faulted_read_run(plan);
    let fs = cl.fault_stats();
    assert!(
        fs.packet_corrupt.injected > 0,
        "plan injected nothing: {fs}"
    );
    assert_eq!(
        fs.packet_corrupt.detected, fs.packet_corrupt.injected,
        "every corruption must be ICRC-detected"
    );
    assert!(
        fs.packet_corrupt.recovered > 0,
        "no recovery recorded: {fs}"
    );
    assert!(fs.retransmits >= fs.packet_corrupt.detected);
    assert_eq!(fs.timeouts, 0, "NAK path should beat the request timeout");
}

/// With NAK retransmission disabled, dropped packets are recovered by
/// the end-to-end request timeout with exponential backoff.
#[test]
fn drops_recovered_by_timeout_and_backoff() {
    let clean = {
        let (cl, finish) = faulted_read_run(FaultPlan::quiet(5));
        assert_eq!(cl.fault_stats().retransmits, 0);
        finish
    };
    let mut plan = FaultPlan::quiet(5);
    plan.packet_drop_prob = 0.2;
    plan.nak_retransmit = false;
    plan.request_timeout = SimDuration::from_ms(2);
    let (cl, finish) = faulted_read_run(plan);
    let fs = cl.fault_stats();
    assert!(fs.packet_drop.injected > 0, "plan injected nothing: {fs}");
    assert!(
        fs.timeouts > 0,
        "recovery must have come from timeouts: {fs}"
    );
    assert!(fs.retransmits > 0);
    assert!(fs.packet_drop.recovered > 0);
    assert!(
        finish > clean,
        "timeout recovery must cost time ({finish} vs clean {clean})"
    );
}

/// Disk soft errors are detected by the controller and retried after
/// the plan's retry delay; the read still completes.
#[test]
fn disk_soft_errors_are_retried() {
    let mut plan = FaultPlan::quiet(3);
    plan.disk_error_prob = 0.6;
    plan.disk_retry_delay = SimDuration::from_ms(1);
    let (cl, _) = faulted_read_run(plan);
    let fs = cl.fault_stats();
    assert!(fs.disk_error.injected > 0, "plan injected nothing: {fs}");
    assert_eq!(fs.disk_error.detected, fs.disk_error.injected);
    assert!(
        fs.disk_error.recovered > 0,
        "retry must have succeeded: {fs}"
    );
}

/// A handler trap mid-stream disables the switch's jump-table entry and
/// migrates the handler — with its accumulated state — to a host-side
/// fallback engine. The benchmark still completes, with the right
/// answer, measurably slower.
#[test]
fn handler_trap_degrades_to_host_fallback() {
    let run = |plan: Option<FaultPlan>| {
        let (topo, h, t, sw) = storage_cluster();
        let mut cfg = ClusterConfig::paper();
        cfg.faults = plan;
        let mut cl = Cluster::new(topo, cfg);
        let data: Vec<u8> = (0..FILE_BYTES as u32)
            .map(|i| if i % 64 == 0 { 0x7F } else { 0 })
            .collect();
        let file = cl.add_file(t, data).unwrap();
        cl.register_handler(
            sw,
            HandlerId::new(1),
            Box::new(CountHandler {
                needle: 0x7F,
                host: h,
                count: 0,
                total: 0,
                expect: FILE_BYTES,
            }),
        )
        .unwrap();
        cl.set_program(
            h,
            Box::new(ActiveCount {
                file,
                sw,
                result: None,
            }),
        )
        .unwrap();
        let r = cl.run().expect("degraded run still completes");
        let finish = r.finish;
        let got = cl
            .take_program(h)
            .expect("program")
            .as_any()
            .and_then(|a| a.downcast_ref::<ActiveCount>())
            .and_then(|p| p.result)
            .expect("handler result arrived");
        (cl, finish, got)
    };

    let (_, clean_finish, clean_count) = run(None);
    assert_eq!(clean_count, FILE_BYTES / 64);

    let mut plan = FaultPlan::quiet(7);
    plan.handler_traps.push(HandlerTrap {
        node: None,
        handler: 1,
        at_invocation: 3,
    });
    let (cl, finish, count) = run(Some(plan));
    assert_eq!(count, clean_count, "fallback must preserve handler state");
    let fs = cl.fault_stats();
    assert_eq!(fs.handler_trap.injected, 1);
    assert_eq!(fs.handler_trap.degraded, 1, "trap must migrate the handler");
    assert!(fs.fallback_packets > 0, "stream must continue on the host");
    assert!(
        finish > clean_finish,
        "degradation must cost time ({finish} vs clean {clean_finish})"
    );
}

/// Permanent faults exhaust the retry budget and surface as a
/// structured error rather than hanging or panicking.
#[test]
fn exhausted_retries_fail_loudly() {
    let (topo, h, t, _sw) = storage_cluster();
    let mut plan = FaultPlan::quiet(1);
    plan.disk_error_prob = 1.0; // the disk never recovers
    plan.disk_retry_delay = SimDuration::from_us(100);
    plan.max_retries = 2;
    let mut cfg = ClusterConfig::paper();
    cfg.faults = Some(plan);
    let mut cl = Cluster::new(topo, cfg);
    let file = cl.add_file(t, vec![0u8; 4096]).unwrap();
    cl.set_program(h, Box::new(OneRead { file, len: 4096 }))
        .unwrap();
    let err = cl.run().unwrap_err();
    assert!(
        matches!(err, SimError::RetriesExhausted { attempts: 3, .. }),
        "wrong error: {err}"
    );
}

/// Same seed, same plan → bit-identical stats digests, even under
/// heavy chaos. This is the exact check the CI determinism job runs.
#[test]
fn same_seed_same_fault_plan_same_digest() {
    let digest = |seed| {
        let mut plan = FaultPlan::chaos(seed);
        plan.packet_corrupt_prob = 0.1; // make sure faults actually fire
        let (cl, _) = faulted_read_run(plan);
        (cl.stats().digest(), cl.fault_stats())
    };
    let (d1, f1) = digest(42);
    let (d2, f2) = digest(42);
    assert_eq!(d1, d2, "same seed diverged: {f1} vs {f2}");
    assert_eq!(f1, f2);
    let (d3, _) = digest(43);
    assert_ne!(d1, d3, "different seeds should perturb the run");
}
