//! Rule `digest-completeness`: every counter reaches the golden
//! digest.
//!
//! The CI determinism job compares `ClusterStats::digest()` against
//! `tests/golden_digests.txt`, and the trace-determinism job does the
//! same for `MetricsReport::digest()`. Those nets only catch what the
//! digests fold in — a new counter that never enters `digest()` can
//! drift silently. This rule parses any file that defines one of the
//! digest roots ([`ROOTS`]), collects every numeric field (recursing
//! into snapshot structs defined in the same file, through `Vec<...>`
//! / `Option<...>`), and requires each field name to appear inside
//! that file's `digest` body. A field that intentionally stays out of
//! the digest carries `// asan-lint: allow(digest-completeness)` on
//! its line.

use std::collections::BTreeMap;

use super::{is_punct, matching_brace, FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Kind, Token};

/// Primitive types whose fields must be digested.
const NUMERIC: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// The digest roots: structs whose numeric closure must be fully
/// folded into the `fn digest` defined in the same file. `Timeline`
/// covers the flight recorder's windowed time-series, which the
/// trace-determinism job byte-diffs through the metrics digest.
const ROOTS: [&str; 3] = ["ClusterStats", "MetricsReport", "Timeline"];

/// One struct field: name, type tokens, declaration line.
struct Field {
    name: String,
    ty: Vec<String>,
    line: u32,
    col: u32,
}

pub(crate) struct DigestCompleteness;

impl Rule for DigestCompleteness {
    fn name(&self) -> &'static str {
        "digest-completeness"
    }

    fn describe(&self) -> &'static str {
        "every numeric ClusterStats/MetricsReport/Timeline field (transitively) must appear in digest()"
    }

    fn scope(&self) -> &'static str {
        "files defining ClusterStats, MetricsReport, or Timeline (self-scoped)"
    }

    fn since_pr(&self) -> u32 {
        3
    }

    fn applies(&self, _rel_path: &str) -> bool {
        // Self-scoping: only files that define a digest root have
        // anything to check.
        true
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        let structs = collect_structs(toks);
        let roots: Vec<&str> = ROOTS
            .iter()
            .copied()
            .filter(|r| structs.contains_key(*r))
            .collect();
        if roots.is_empty() {
            return;
        }
        let Some(digest_idents) = digest_body_idents(toks) else {
            out.push(Diagnostic {
                rule: self.name(),
                severity: Severity::Deny,
                file: ctx.rel_path.to_string(),
                line: 1,
                col: 0,
                message: format!(
                    "`{}` is defined here but no `fn digest` body was found",
                    roots.join("`/`"),
                ),
            });
            return;
        };
        // Walk each root's numeric closure over same-file structs.
        let mut queue: Vec<&str> = roots;
        let mut seen: Vec<&str> = Vec::new();
        while let Some(name) = queue.pop() {
            if seen.contains(&name) {
                continue;
            }
            seen.push(name);
            for f in &structs[name] {
                let numeric = f.ty.iter().any(|t| NUMERIC.contains(&t.as_str()));
                if numeric && !digest_idents.contains(&f.name) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Deny,
                        file: ctx.rel_path.to_string(),
                        line: f.line,
                        col: f.col,
                        message: format!(
                            "numeric field `{}::{}` never appears in `digest()`; fold it \
                             in (new counters must be under the golden-digest net) or \
                             annotate `// asan-lint: allow(digest-completeness)`",
                            name, f.name,
                        ),
                    });
                }
                for t in &f.ty {
                    if let Some((k, _)) = structs.get_key_value(t.as_str()) {
                        queue.push(k);
                    }
                }
            }
        }
    }
}

/// Collects `struct Name { field: Type, ... }` declarations.
fn collect_structs(toks: &[Token]) -> BTreeMap<String, Vec<Field>> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "struct") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == Kind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body `{` — tuple structs (`(`) and unit structs
        // (`;`) have no named fields to check.
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].text.as_str(), "{" | "(" | ";") {
            j += 1;
        }
        if !is_punct(toks, j, "{") {
            i = j.max(i + 1);
            continue;
        }
        let close = matching_brace(toks, j);
        out.insert(name.text.clone(), collect_fields(&toks[j + 1..close]));
        i = close;
    }
    out
}

/// Splits one struct body into fields (top-level `name: type` pairs).
fn collect_fields(body: &[Token]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        // A field starts with `ident :` at depth 0 (skipping `pub` /
        // `pub(crate)` handled naturally: `pub` is an ident not
        // followed by `:`).
        if depth == 0 && t.kind == Kind::Ident && is_punct(body, i + 1, ":") {
            let name = t.text.clone();
            let (line, col) = (t.line, t.col);
            let mut ty = Vec::new();
            let mut j = i + 2;
            let mut tdepth = 0i32;
            while j < body.len() {
                let tt = &body[j];
                if tt.kind == Kind::Punct {
                    match tt.text.as_str() {
                        "<" | "(" | "[" => tdepth += 1,
                        ">" | ")" | "]" => tdepth -= 1,
                        "," if tdepth <= 0 => break,
                        _ => {}
                    }
                } else if tt.kind == Kind::Ident {
                    ty.push(tt.text.clone());
                }
                j += 1;
            }
            fields.push(Field {
                name,
                ty,
                line,
                col,
            });
            i = j;
            continue;
        }
        i += 1;
    }
    fields
}

/// The union of identifiers across every `fn digest` body in the file
/// (a file may define several digest roots), or `None` if there is no
/// `fn digest` at all.
fn digest_body_idents(toks: &[Token]) -> Option<Vec<String>> {
    let mut idents: Option<Vec<String>> = None;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == Kind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|t| t.text == "digest")
        {
            let Some(open) = (i..toks.len()).find(|&j| is_punct(toks, j, "{")) else {
                break;
            };
            let close = matching_brace(toks, open);
            idents.get_or_insert_with(Vec::new).extend(
                toks[open..close]
                    .iter()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone()),
            );
            i = close;
            continue;
        }
        i += 1;
    }
    idents
}
