//! Per-engine unit tests: each engine is driven standalone with a
//! scripted event sequence over a hand-built [`EventBus`], asserting on
//! the follow-up events it schedules and the shared state it mutates —
//! no full cluster run involved.

use std::collections::{BTreeMap, BTreeSet};

use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{Fabric, HandlerId, LinkConfig, NodeId, MTU};
use asan_sim::faults::FaultInjector;
use asan_sim::sched::Scheduler;
use asan_sim::{SimDuration, SimTime};

use crate::cluster::ClusterConfig;
use crate::events::{Dest, Event, EventBus, FileId, FileMeta, FileStore, HostMsg, IoState, ReqId};
use crate::handler::{Handler, HandlerCtx};
use crate::metrics::Probe;

use super::{
    route, DispatchEngine, Engine, FabricEngine, HostCtx, HostEngine, HostProgram, StorageEngine,
    Subsystem,
};

/// A one-host/one-switch/one-TCA bus rig: everything an [`EventBus`]
/// lends out, plus the node IDs, so a single engine can be driven in
/// isolation.
struct Rig {
    sched: Scheduler<Event>,
    fabric: Fabric,
    injector: Option<FaultInjector>,
    reqs: BTreeMap<ReqId, IoState>,
    files: FileStore,
    cfg: ClusterConfig,
    active_tca_nodes: BTreeSet<NodeId>,
    probe: Probe,
    host: NodeId,
    host2: NodeId,
    sw: NodeId,
    tca: NodeId,
}

impl Rig {
    fn new() -> Self {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SwitchSpec::paper());
        let host = b.add_host();
        let host2 = b.add_host();
        let tca = b.add_tca();
        b.connect(host, sw, LinkConfig::paper());
        b.connect(host2, sw, LinkConfig::paper());
        b.connect(tca, sw, LinkConfig::paper());
        Rig {
            sched: Scheduler::new(),
            fabric: b.build(),
            injector: None,
            reqs: BTreeMap::new(),
            files: FileStore::default(),
            cfg: ClusterConfig::paper(),
            active_tca_nodes: BTreeSet::new(),
            probe: Probe::default(),
            host,
            host2,
            sw,
            tca,
        }
    }

    fn bus(&mut self) -> EventBus<'_> {
        EventBus {
            sched: &mut self.sched,
            fabric: &mut self.fabric,
            injector: &mut self.injector,
            reqs: &mut self.reqs,
            files: &mut self.files,
            cfg: &self.cfg,
            active_tca_nodes: &self.active_tca_nodes,
            probe: &mut self.probe,
        }
    }

    /// Stores a `len`-byte file on the rig's TCA at disk offset 0.
    fn add_file(&mut self, len: usize) -> FileId {
        self.files.push(
            FileMeta {
                tca: self.tca,
                len: len as u64,
                disk_offset: 0,
            },
            vec![0xAB; len],
        )
    }

    /// A fresh in-flight request entry, as the host engine would record
    /// for a plain buffered read.
    fn io_state(&self, bytes: u64) -> IoState {
        IoState {
            host: self.host,
            dest: Dest::HostBuf { addr: 0x100 },
            remaining: usize::MAX,
            bytes,
            tca: self.tca,
            file: FileId(0),
            offset: 0,
            got: Vec::new(),
            lens: Vec::new(),
            faulted: Vec::new(),
            attempt: 0,
            timeout: SimDuration::ZERO,
        }
    }

    /// Pops every scheduled event, in deterministic order.
    fn drain(&mut self) -> Vec<(SimTime, Event)> {
        let mut out = Vec::new();
        while let Some(e) = self.sched.pop() {
            out.push(e);
        }
        out
    }
}

#[test]
fn every_event_routes_to_its_owner() {
    let rig = Rig::new();
    let req = ReqId(0);
    let cases: Vec<(Event, Subsystem)> = vec![
        (Event::Start(rig.host), Subsystem::Host),
        (
            Event::IoComplete {
                host: rig.host,
                req,
            },
            Subsystem::Host,
        ),
        (Event::Retransmit { req, seq: 0 }, Subsystem::Fabric),
        (Event::RequestTimeout { req, attempt: 0 }, Subsystem::Fabric),
        (
            Event::CompletionNotice {
                tca: rig.tca,
                host: rig.host,
                req,
            },
            Subsystem::Fabric,
        ),
        (
            Event::PacketToTca {
                tca: rig.tca,
                bytes: 64,
            },
            Subsystem::Storage,
        ),
    ];
    for (ev, want) in cases {
        assert_eq!(
            route(&ev),
            want,
            "{}",
            asan_sim::sched::Traceable::trace_label(&ev)
        );
    }
}

/// Reads one block on start, nothing more.
struct ReadOnStart {
    file: FileId,
    len: u64,
}

impl HostProgram for ReadOnStart {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.read_file(self.file, 0, self.len, Dest::HostBuf { addr: 0x100 });
    }
}

#[test]
fn host_engine_start_issues_read_and_tracks_request() {
    let mut rig = Rig::new();
    let file = rig.add_file(8192);
    let mut eng = HostEngine::default();
    eng.add_host(rig.host, &rig.cfg);
    eng.set_program(rig.host, Box::new(ReadOnStart { file, len: 4096 }))
        .unwrap();
    eng.on_event(SimTime::ZERO, Event::Start(rig.host), &mut rig.bus())
        .unwrap();

    // The request landed in the shared in-flight table.
    assert_eq!(rig.reqs.len(), 1);
    let st = &rig.reqs[&ReqId(0)];
    assert_eq!(st.host, rig.host);
    assert_eq!(st.tca, rig.tca);
    assert_eq!(st.bytes, 4096);

    // Exactly one follow-up: the control packet arriving at the TCA,
    // after real wire time (no fault plan, so no watchdog timer).
    let evs = rig.drain();
    assert_eq!(evs.len(), 1);
    let (at, ev) = &evs[0];
    assert!(*at > SimTime::ZERO, "control packet pays wire time");
    match ev {
        Event::IoRequestAtTca {
            tca,
            req,
            len,
            attempt,
            ..
        } => {
            assert_eq!(*tca, rig.tca);
            assert_eq!(*req, ReqId(0));
            assert_eq!(*len, 4096);
            assert_eq!(*attempt, 0);
        }
        other => panic!("expected IoRequestAtTca, got {other:?}"),
    }
}

/// Sends one MTU-crossing message to a peer host, then finishes.
struct SendAndQuit {
    peer: NodeId,
    len: usize,
}

impl HostProgram for SendAndQuit {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.send(self.peer, None, 0, vec![7; self.len]);
        ctx.finish();
    }
}

#[test]
fn host_engine_send_packetizes_per_mtu_and_finishes() {
    let mut rig = Rig::new();
    let mut eng = HostEngine::default();
    eng.add_host(rig.host, &rig.cfg);
    eng.set_program(
        rig.host,
        Box::new(SendAndQuit {
            peer: rig.host2,
            len: MTU + 10,
        }),
    )
    .unwrap();
    eng.on_event(SimTime::ZERO, Event::Start(rig.host), &mut rig.bus())
        .unwrap();

    let finish = eng.finish_time();
    assert!(finish > SimTime::ZERO, "program declared itself finished");

    // One message over MTU ⇒ two packets, sequenced, full payload.
    let evs = rig.drain();
    let mut lens = Vec::new();
    for (i, (_, ev)) in evs.iter().enumerate() {
        match ev {
            Event::PacketToHost { host, msg, io_req } => {
                assert_eq!(*host, rig.host2);
                assert_eq!(msg.src, rig.host);
                assert_eq!(msg.seq, i as u32);
                assert!(io_req.is_none());
                lens.push(msg.data.len());
            }
            other => panic!("expected PacketToHost, got {other:?}"),
        }
    }
    assert_eq!(lens, vec![MTU, 10]);

    // The send is booked as outbound host payload.
    let reports = eng.reports(finish);
    let hr = reports.iter().find(|h| h.node == rig.host).unwrap();
    assert_eq!(hr.payload.bytes_out, (MTU + 10) as u64);
}

#[test]
fn host_engine_completes_request_after_last_packet() {
    let mut rig = Rig::new();
    let mut eng = HostEngine::default();
    eng.add_host(rig.host, &rig.cfg);
    let req = ReqId(3);
    let mut st = rig.io_state(2 * 1024);
    st.remaining = 2;
    rig.reqs.insert(req, st);

    let (host, tca) = (rig.host, rig.tca);
    let arrival = move |seq: u32| Event::PacketToHost {
        host,
        msg: HostMsg {
            src: tca,
            handler: None,
            addr: 0,
            data: vec![0; 1024].into(),
            seq,
        },
        io_req: Some(req),
    };

    // First of two packets: request stays open, nothing scheduled.
    eng.on_event(SimTime::from_ns(100), arrival(0), &mut rig.bus())
        .unwrap();
    assert_eq!(rig.reqs[&req].remaining, 1);
    assert!(rig.sched.is_empty());

    // Last packet: IoComplete fires after the HCA receive latency.
    eng.on_event(SimTime::from_ns(200), arrival(1), &mut rig.bus())
        .unwrap();
    let evs = rig.drain();
    assert_eq!(evs.len(), 1);
    assert!(evs[0].0 > SimTime::from_ns(200));
    assert!(matches!(
        evs[0].1,
        Event::IoComplete { host, req: r } if host == rig.host && r == req
    ));

    // Both DMA'd stripes count as inbound payload.
    let reports = eng.reports(SimTime::from_ns(200));
    let hr = reports.iter().find(|h| h.node == rig.host).unwrap();
    assert_eq!(hr.payload.bytes_in, 2 * 1024);
}

#[test]
fn fabric_engine_completion_notice_crosses_wire_to_io_complete() {
    let mut rig = Rig::new();
    let mut eng = FabricEngine;
    let t = SimTime::from_us(5);
    eng.on_event(
        t,
        Event::CompletionNotice {
            tca: rig.tca,
            host: rig.host,
            req: ReqId(9),
        },
        &mut rig.bus(),
    )
    .unwrap();
    let evs = rig.drain();
    assert_eq!(evs.len(), 1);
    assert!(evs[0].0 > t, "the notice pays header wire time");
    assert!(matches!(
        evs[0].1,
        Event::IoComplete { host, req } if host == rig.host && req == ReqId(9)
    ));
}

#[test]
fn fabric_engine_injects_and_delivers_by_node_kind() {
    let mut rig = Rig::new();
    let mut eng = FabricEngine;
    let inject = |src: NodeId, dst: NodeId| Event::InjectIoPacket {
        src,
        dst,
        handler: None,
        addr: 0,
        payload: vec![0xEE; 256].into(),
        seq: 0,
        io_req: None,
        trace: 0,
    };
    // To a host: arrives as a host packet carrying the payload.
    eng.on_event(SimTime::ZERO, inject(rig.tca, rig.host), &mut rig.bus())
        .unwrap();
    // To a plain (non-active) TCA: arrives as a raw archive write.
    eng.on_event(SimTime::ZERO, inject(rig.host, rig.tca), &mut rig.bus())
        .unwrap();
    let evs = rig.drain();
    assert_eq!(evs.len(), 2);
    assert!(evs.iter().any(|(_, ev)| matches!(
        ev,
        Event::PacketToHost { host, msg, .. } if *host == rig.host && msg.data.len() == 256
    )));
    assert!(evs.iter().any(|(_, ev)| matches!(
        ev,
        Event::PacketToTca { tca, bytes } if *tca == rig.tca && *bytes == 256
    )));
}

#[test]
fn storage_engine_turns_request_into_per_mtu_packet_schedule() {
    let mut rig = Rig::new();
    let len = 8192u64;
    let file = rig.add_file(len as usize);
    let req = ReqId(0);
    let st = rig.io_state(len);
    rig.reqs.insert(req, st);

    let mut eng = StorageEngine::default();
    eng.add_tca(rig.tca, &rig.cfg);
    eng.on_event(
        SimTime::ZERO,
        Event::IoRequestAtTca {
            tca: rig.tca,
            req,
            file,
            offset: 0,
            len,
            dest: Dest::HostBuf { addr: 0x100 },
            attempt: 0,
        },
        &mut rig.bus(),
    )
    .unwrap();

    let evs = rig.drain();
    // Host-destined data: every packet is a tracked fabric injection at
    // its disk-schedule ready time, and the expected stripe count was
    // recorded on the request.
    assert_eq!(rig.reqs[&req].remaining, evs.len());
    let mut total = 0usize;
    let mut last = SimTime::ZERO;
    for (i, (ready, ev)) in evs.iter().enumerate() {
        assert!(*ready >= last, "ready times are monotone");
        last = *ready;
        match ev {
            Event::InjectIoPacket {
                src,
                dst,
                payload,
                seq,
                io_req,
                ..
            } => {
                assert_eq!(*src, rig.tca);
                assert_eq!(*dst, rig.host);
                assert_eq!(*seq, i as u32);
                assert_eq!(*io_req, Some(req));
                assert!(payload.len() <= MTU);
                total += payload.len();
            }
            other => panic!("expected InjectIoPacket, got {other:?}"),
        }
    }
    assert_eq!(total as u64, len, "every byte of the read is scheduled");
}

#[test]
fn storage_engine_aggregates_archive_writes() {
    let mut rig = Rig::new();
    let mut eng = StorageEngine::default();
    eng.add_tca(rig.tca, &rig.cfg);
    // Nothing pending: flush is the identity on the drain time.
    assert_eq!(eng.flush(SimTime::ZERO, &mut rig.probe), SimTime::ZERO);
    // 63 KB + 1 KB cross the 64 KB aggregation chunk: the write is
    // issued eagerly at arrival, and flush() reports its completion.
    for bytes in [63 * 1024, 1024] {
        eng.on_event(
            SimTime::ZERO,
            Event::PacketToTca {
                tca: rig.tca,
                bytes,
            },
            &mut rig.bus(),
        )
        .unwrap();
    }
    assert!(eng.flush(SimTime::ZERO, &mut rig.probe) > SimTime::ZERO);

    // A trailing sub-chunk residue is written out by flush() itself.
    let mut eng2 = StorageEngine::default();
    eng2.add_tca(rig.tca, &rig.cfg);
    eng2.on_event(
        SimTime::ZERO,
        Event::PacketToTca {
            tca: rig.tca,
            bytes: 10 * 1024,
        },
        &mut rig.bus(),
    )
    .unwrap();
    assert!(eng2.flush(SimTime::ZERO, &mut rig.probe) > SimTime::ZERO);
}

/// Charges per-byte stream work and forwards a 4-byte digest home.
struct Shrink {
    home: NodeId,
}

impl Handler for Shrink {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        ctx.send(self.home, None, 0, &data[..4]);
    }
}

#[test]
fn dispatch_engine_invokes_handler_and_routes_its_output() {
    let mut rig = Rig::new();
    let mut eng = DispatchEngine::default();
    eng.add_switch(rig.sw, rig.cfg.active.clone());
    eng.register(
        rig.sw,
        HandlerId::new(1),
        Box::new(Shrink { home: rig.host }),
    )
    .unwrap();

    let pkt = asan_net::Packet::new(
        asan_net::Header {
            src: rig.host2,
            dst: rig.sw,
            len: 64,
            handler: Some(HandlerId::new(1)),
            addr: 0,
            seq: 0,
        },
        vec![0x11; 64],
    );
    let t = SimTime::from_us(1);
    eng.on_event(
        t,
        Event::PacketToSwitch {
            sw: rig.sw,
            pkt,
            payload_start: t,
            payload_end: t,
            io_req: None,
            trace: 0,
        },
        &mut rig.bus(),
    )
    .unwrap();

    // The switch engine ran the handler over the real bytes…
    let s = eng.switch(rig.sw).unwrap();
    assert_eq!(s.stats().invocations.get(), 1);
    assert_eq!(s.stats().bytes_in.get(), 64);
    assert_eq!(s.stats().bytes_out.get(), 4);

    // …and its 4-byte output crossed the fabric to the home host.
    let evs = rig.drain();
    assert_eq!(evs.len(), 1);
    match &evs[0].1 {
        Event::PacketToHost { host, msg, io_req } => {
            assert_eq!(*host, rig.host);
            assert_eq!(msg.src, rig.sw, "messages carry the logical origin");
            assert_eq!(&*msg.data, &[0x11; 4]);
            assert!(io_req.is_none());
        }
        other => panic!("expected PacketToHost, got {other:?}"),
    }
}
