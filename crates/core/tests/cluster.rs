//! End-to-end tests of the assembled [`Cluster`], exercising the whole
//! engine composition through the public API: normal reads, active
//! reads, host messaging, prefetch overlap, active TCAs, background
//! jobs, statistics, and switch-initiated reads.

use asan_core::active::ActiveSwitchConfig;
use asan_core::cluster::{
    Cluster, ClusterConfig, Dest, FileId, HostCtx, HostMsg, HostProgram, ReqId,
};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, LinkConfig, NodeId};
use asan_sim::SimDuration;

fn single_switch(hosts: usize, tcas: usize) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let hs: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
    let ts: Vec<NodeId> = (0..tcas).map(|_| b.add_tca()).collect();
    for &h in &hs {
        b.connect(h, sw, LinkConfig::paper());
    }
    for &t in &ts {
        b.connect(t, sw, LinkConfig::paper());
    }
    (b, hs, ts, sw)
}

/// Reads one block and finishes.
struct OneRead {
    file: FileId,
    bytes_seen: u64,
}

impl HostProgram for OneRead {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.read_file(self.file, 0, 64 * 1024, Dest::HostBuf { addr: 0x1000_0000 });
    }
    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
        // Scan the freshly DMA'd block: 64 KB of cold lines.
        ctx.cpu().touch_lines(0x1000_0000, 64 * 1024, 2, false);
        self.bytes_seen += 64 * 1024;
        ctx.finish();
    }
}

#[test]
fn normal_read_flows_end_to_end() {
    let (topo, hs, ts, _) = single_switch(1, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let data = vec![0x5A; 64 * 1024];
    let file = cl.add_file(ts[0], data).unwrap();
    cl.set_program(
        hs[0],
        Box::new(OneRead {
            file,
            bytes_seen: 0,
        }),
    )
    .unwrap();
    let r = cl.run().unwrap();
    // Sequential read from parked heads: ~0.66 ms transfer plus
    // request/OS/network overheads.
    let ms = r.finish.as_secs_f64() * 1e3;
    assert!((0.6..2.5).contains(&ms), "finish = {ms} ms");
    // All 64 KB arrived at the host.
    assert_eq!(r.host(hs[0]).unwrap().payload.bytes_in, 64 * 1024);
    // Host was mostly idle (I/O wait dominates).
    assert!(r.host(hs[0]).unwrap().breakdown.utilization() < 0.2);
}

/// Counts matching bytes in the switch, sends only the count home.
struct CountHandler {
    needle: u8,
    host: NodeId,
    count: u64,
    total: u64,
    expect: u64,
}

impl Handler for CountHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        self.count += data.iter().filter(|&&b| b == self.needle).count() as u64;
        self.total += data.len() as u64;
        if self.total >= self.expect {
            ctx.send(self.host, None, 0, &self.count.to_le_bytes());
        }
    }
}

/// Issues an active read and waits for the handler's result message.
struct ActiveCount {
    file: FileId,
    sw: NodeId,
    result: Option<u64>,
}

impl HostProgram for ActiveCount {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let len = ctx.file_len(self.file);
        ctx.read_file(
            self.file,
            0,
            len,
            Dest::Mapped {
                node: self.sw,
                handler: HandlerId::new(1),
                base_addr: 0,
            },
        );
    }
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        self.result = Some(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        ctx.finish();
    }
}

#[test]
fn active_read_invokes_handler_and_filters_traffic() {
    let (topo, hs, ts, sw) = single_switch(1, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    // 64 KB where every 64th byte is 0x7F.
    let data: Vec<u8> = (0..64 * 1024u32)
        .map(|i| if i % 64 == 0 { 0x7F } else { 0 })
        .collect();
    let _expect_matches = (64 * 1024 / 64) as u64;
    let file = cl.add_file(ts[0], data).unwrap();
    cl.register_handler(
        sw,
        HandlerId::new(1),
        Box::new(CountHandler {
            needle: 0x7F,
            host: hs[0],
            count: 0,
            total: 0,
            expect: 64 * 1024,
        }),
    )
    .unwrap();
    cl.set_program(
        hs[0],
        Box::new(ActiveCount {
            file,
            sw,
            result: None,
        }),
    )
    .unwrap();
    let r = cl.run().unwrap();
    // The handler computed the real answer.
    // (Retrieve via the switch stats and the program's own state is
    // gone; check through traffic instead.)
    assert_eq!(r.switch(sw).unwrap().bytes_in, 64 * 1024);
    // Only the 8-byte count (plus the completion header) reached the
    // host: traffic reduced by ~8000x.
    assert!(r.host(hs[0]).unwrap().payload.bytes_in <= 16);
    // The switch CPU did the work.
    assert_eq!(r.switch(sw).unwrap().invocations, 128);
}

/// Two hosts exchange a message.
struct Pinger {
    peer: NodeId,
}
impl HostProgram for Pinger {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.send(self.peer, None, 0, vec![1u8; 100]);
        ctx.finish();
    }
}
struct Ponger {
    got: usize,
}
impl HostProgram for Ponger {
    fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        self.got += msg.data.len();
        ctx.finish();
    }
}

#[test]
fn host_to_host_messaging() {
    let (topo, hs, _, _) = single_switch(2, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    cl.set_program(hs[0], Box::new(Pinger { peer: hs[1] }))
        .unwrap();
    cl.set_program(hs[1], Box::new(Ponger { got: 0 })).unwrap();
    let r = cl.run().unwrap();
    assert_eq!(r.host(hs[0]).unwrap().payload.bytes_out, 100);
    assert_eq!(r.host(hs[1]).unwrap().payload.bytes_in, 100);
    // Message latency: HCA software + adapter latency both ways +
    // 2 hops + routing ≈ under ten microseconds.
    assert!(r.finish.as_ns() < 15_000, "finish = {}", r.finish);
}

#[test]
fn non_active_traffic_unaffected_by_busy_switch_cpu() {
    // Ping-pong latency with and without a storming active flow from
    // another host must be identical up to link contention on
    // disjoint ports — the active hardware is off the datapath.
    let (topo, hs, _, _sw) = single_switch(3, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    cl.set_program(hs[0], Box::new(Pinger { peer: hs[1] }))
        .unwrap();
    cl.set_program(hs[1], Box::new(Ponger { got: 0 })).unwrap();
    let r = cl.run().unwrap();
    let t_quiet = r.host(hs[1]).unwrap().finished_at;

    // Same again, but host 2 hammers the switch CPU with actives.
    struct Storm {
        sw: NodeId,
    }
    impl HostProgram for Storm {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            for i in 0..20u32 {
                ctx.send(self.sw, Some(HandlerId::new(9)), i * 512, vec![0; 512]);
            }
            ctx.finish();
        }
    }
    struct Burn;
    impl Handler for Burn {
        fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
            ctx.compute(100_000);
        }
    }
    let (topo2, hs2, _, sw2) = single_switch(3, 1);
    let mut cl2 = Cluster::new(topo2, ClusterConfig::paper());
    cl2.register_handler(sw2, HandlerId::new(9), Box::new(Burn))
        .unwrap();
    cl2.set_program(hs2[0], Box::new(Pinger { peer: hs2[1] }))
        .unwrap();
    cl2.set_program(hs2[1], Box::new(Ponger { got: 0 }))
        .unwrap();
    cl2.set_program(hs2[2], Box::new(Storm { sw: sw2 }))
        .unwrap();
    let r2 = cl2.run().unwrap();
    let t_stormy = r2.host(hs2[1]).unwrap().finished_at;
    assert_eq!(t_quiet, t_stormy, "active load perturbed non-active path");
}

#[test]
fn prefetch_two_outstanding_overlaps_io() {
    // Reading 8 blocks serially vs with 2 outstanding requests: the
    // prefetched run must be faster.
    struct Serial {
        file: FileId,
        next: u64,
        blocks: u64,
    }
    impl HostProgram for Serial {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.read_file(self.file, 0, 65536, Dest::HostBuf { addr: 0x1000_0000 });
            self.next = 1;
        }
        fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
            ctx.cpu().touch_lines(0x1000_0000, 65536, 4, false);
            if self.next < self.blocks {
                ctx.read_file(
                    self.file,
                    self.next * 65536,
                    65536,
                    Dest::HostBuf { addr: 0x1000_0000 },
                );
                self.next += 1;
            } else {
                ctx.finish();
            }
        }
    }
    struct Pref {
        file: FileId,
        issued: u64,
        done: u64,
        blocks: u64,
    }
    impl HostProgram for Pref {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            for i in 0..2.min(self.blocks) {
                ctx.read_file(
                    self.file,
                    i * 65536,
                    65536,
                    Dest::HostBuf { addr: 0x1000_0000 },
                );
                self.issued += 1;
            }
        }
        fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
            ctx.cpu().touch_lines(0x1000_0000, 65536, 4, false);
            self.done += 1;
            if self.issued < self.blocks {
                ctx.read_file(
                    self.file,
                    self.issued * 65536,
                    65536,
                    Dest::HostBuf { addr: 0x1000_0000 },
                );
                self.issued += 1;
            } else if self.done == self.blocks {
                ctx.finish();
            }
        }
    }
    let mk = |prog: bool| {
        let (topo, hs, ts, _) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let file = cl.add_file(ts[0], vec![7; 8 * 65536]).unwrap();
        if prog {
            cl.set_program(
                hs[0],
                Box::new(Pref {
                    file,
                    issued: 0,
                    done: 0,
                    blocks: 8,
                }),
            )
            .unwrap();
        } else {
            cl.set_program(
                hs[0],
                Box::new(Serial {
                    file,
                    next: 0,
                    blocks: 8,
                }),
            )
            .unwrap();
        }
        cl.run().unwrap().finish
    };
    let serial = mk(false);
    let pref = mk(true);
    assert!(
        pref < serial,
        "prefetch ({pref}) should beat serial ({serial})"
    );
}

#[test]
fn active_tca_filters_before_the_network() {
    // The same counting handler, but installed on the TCA: the SAN
    // only ever carries the handler's output.
    let (topo, hs, ts, _sw) = single_switch(1, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let data: Vec<u8> = (0..32 * 1024u32)
        .map(|i| if i % 64 == 0 { 0x7F } else { 0 })
        .collect();
    let file = cl.add_file(ts[0], data).unwrap();
    cl.enable_active_tca(ts[0], ActiveSwitchConfig::paper())
        .unwrap();
    cl.register_tca_handler(
        ts[0],
        HandlerId::new(1),
        Box::new(CountHandler {
            needle: 0x7F,
            host: hs[0],
            count: 0,
            total: 0,
            expect: 32 * 1024,
        }),
    )
    .unwrap();
    cl.set_program(
        hs[0],
        Box::new(ActiveCount {
            file,
            sw: ts[0], // mapped straight to the TCA's own engine
            result: None,
        }),
    )
    .unwrap();
    let r = cl.run().unwrap();
    // Only the 8-byte count crossed the fabric toward the host.
    assert!(r.host(hs[0]).unwrap().payload.bytes_in <= 16);
    // The raw 32 KB never entered the SAN: link bytes are tiny.
    assert!(
        r.link_bytes < 4096,
        "SAN carried {} B despite disk-side filtering",
        r.link_bytes
    );
}

#[test]
fn background_job_consumes_idle_time() {
    let (topo, hs, ts, _) = single_switch(1, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let file = cl.add_file(ts[0], vec![0x5A; 64 * 1024]).unwrap();
    cl.set_program(
        hs[0],
        Box::new(OneRead {
            file,
            bytes_seen: 0,
        }),
    )
    .unwrap();
    // A 100 us job fits easily inside the ~700 us of I/O wait.
    cl.set_background_job(hs[0], SimDuration::from_us(100))
        .unwrap();
    let r = cl.run().unwrap();
    let h = r.host(hs[0]).unwrap();
    assert!(h.background_done.is_some(), "job did not finish");
    assert!(h.background_done.unwrap() <= h.finished_at);
    assert_eq!(h.background_left, SimDuration::ZERO);
    // The job's time shows up as busy, not idle.
    assert!(h.breakdown.busy >= SimDuration::from_us(100));
}

#[test]
fn stats_snapshot_counts_real_work() {
    let (topo, hs, ts, sw) = single_switch(1, 1);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let file = cl.add_file(ts[0], vec![0x11; 64 * 1024]).unwrap();
    cl.register_handler(
        sw,
        HandlerId::new(1),
        Box::new(CountHandler {
            needle: 0x11,
            host: hs[0],
            count: 0,
            total: 0,
            expect: 64 * 1024,
        }),
    )
    .unwrap();
    cl.set_program(
        hs[0],
        Box::new(ActiveCount {
            file,
            sw,
            result: None,
        }),
    )
    .unwrap();
    cl.run().unwrap();
    let st = cl.stats();
    assert_eq!(st.switches.len(), 1);
    assert_eq!(st.switches[0].invocations, 128);
    assert_eq!(st.switches[0].bytes_in, 64 * 1024);
    assert!(st.switches[0].atb_hits > 0);
    assert_eq!(st.storage.len(), 1);
    assert_eq!(
        st.storage[0].disk_bytes.iter().sum::<u64>(),
        64 * 1024,
        "disks served the whole file"
    );
    assert!(st.fabric.link_bytes > 64 * 1024);
    assert!(st.events > 0);
    // Display renders without panicking and mentions the switch.
    assert!(st.to_string().contains("invocations"));
}

#[test]
fn tar_style_switch_initiated_read_bypasses_host() {
    // A handler that, on a trigger message, pulls a file from the
    // TCA straight to an archive TCA.
    struct TarHandler {
        tca: NodeId,
        archive: NodeId,
        file: usize,
        len: u64,
    }
    impl Handler for TarHandler {
        fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
            let _ = ctx.payload();
            ctx.request_disk_read(self.tca, self.file, 0, self.len, self.archive, None, 0);
        }
    }
    struct Trigger {
        sw: NodeId,
    }
    impl HostProgram for Trigger {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.send(self.sw, Some(HandlerId::new(2)), 0, vec![0u8; 64]);
            ctx.finish();
        }
    }
    let (topo, hs, ts, sw) = single_switch(1, 2);
    let mut cl = Cluster::new(topo, ClusterConfig::paper());
    let file = cl.add_file(ts[0], vec![9u8; 256 * 1024]).unwrap();
    cl.register_handler(
        sw,
        HandlerId::new(2),
        Box::new(TarHandler {
            tca: ts[0],
            archive: ts[1],
            file: file.0,
            len: 256 * 1024,
        }),
    )
    .unwrap();
    cl.set_program(hs[0], Box::new(Trigger { sw })).unwrap();
    let r = cl.run().unwrap();
    // Host saw only its trigger message out; the 256 KB went
    // disk → switch-request → disk → archive without touching it.
    assert_eq!(r.host(hs[0]).unwrap().payload.bytes_in, 0);
    assert_eq!(r.host(hs[0]).unwrap().payload.bytes_out, 64);
    // The drain time includes the archive write completing.
    assert!(r.drain > r.finish);
}

/// One level of an in-network sum placed by an [`AggregationTree`]:
/// combine `expect` contributions, then forward the partial to the
/// parent switch (or deliver to the collector host at the tree root).
struct SumStage {
    expect: usize,
    parent: Option<NodeId>,
    collector: NodeId,
    got: usize,
    sum: u64,
}

impl Handler for SumStage {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        self.sum += u64::from_le_bytes(data[..8].try_into().unwrap());
        self.got += 1;
        if self.got == self.expect {
            match self.parent {
                Some(up) => ctx.send(up, Some(HandlerId::new(7)), 0, &self.sum.to_le_bytes()),
                None => ctx.send(self.collector, None, 0, &self.sum.to_le_bytes()),
            }
        }
    }
}

/// Fires one value into the placed tree; the collector waits for the
/// combined result.
struct Contributor {
    value: u64,
    ingress: NodeId,
    wait: bool,
    result: Option<u64>,
}

impl HostProgram for Contributor {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.send(
            self.ingress,
            Some(HandlerId::new(7)),
            0,
            self.value.to_le_bytes().to_vec(),
        );
        if !self.wait {
            ctx.finish();
        }
    }
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        self.result = Some(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        ctx.finish();
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[test]
fn spec_fabric_aggregates_through_placed_handlers() {
    use asan_core::{aggregation_tree, HandlerPlacement};
    use asan_net::TopoSpec;

    // 8 hosts on a radix-4 fat-tree (4 leaves, 2 mids, 1 root); every
    // placement must deliver the same in-network sum to host 0 over
    // deterministic multi-hop routes.
    for placement in HandlerPlacement::ALL {
        let spec = TopoSpec::fat_tree(4, 8, 0);
        let (mut cl, map) = Cluster::from_spec(&spec, ClusterConfig::paper());
        let tree = aggregation_tree(&map, &map.hosts, placement);
        let collector = map.hosts[0];
        cl.place_handlers(&tree, HandlerId::new(7), |_, n| {
            Box::new(SumStage {
                expect: n.expect,
                parent: n.parent,
                collector,
                got: 0,
                sum: 0,
            })
        })
        .unwrap();
        for (i, &h) in map.hosts.iter().enumerate() {
            cl.set_program(
                h,
                Box::new(Contributor {
                    value: (i + 1) as u64,
                    ingress: tree.ingress[&h],
                    wait: h == collector,
                    result: None,
                }),
            )
            .unwrap();
        }
        let report = cl.run().unwrap();
        let program = cl.take_program(collector).unwrap();
        let c = program
            .as_any()
            .and_then(|a| a.downcast_ref::<Contributor>())
            .expect("contributor");
        assert_eq!(c.result, Some(36), "{}: 1+2+…+8", placement.label());
        assert!(report.finish.as_ps() > 0);
    }
}

#[test]
fn place_handlers_rejects_non_switch_nodes() {
    use asan_core::placement::{AggNode, AggregationTree};
    use asan_net::TopoSpec;

    let spec = TopoSpec::fat_tree(4, 4, 0);
    let (mut cl, map) = Cluster::from_spec(&spec, ClusterConfig::paper());
    // A hand-forged tree whose "switch" is actually a host.
    let bogus = AggregationTree {
        nodes: [(
            map.hosts[0],
            AggNode {
                expect: 1,
                parent: None,
                host_children: vec![map.hosts[0]],
                switch_children: vec![],
            },
        )]
        .into_iter()
        .collect(),
        ingress: [(map.hosts[0], map.hosts[0])].into_iter().collect(),
        root: map.hosts[0],
    };
    let err = cl.place_handlers(&bogus, HandlerId::new(7), |_, n| {
        Box::new(SumStage {
            expect: n.expect,
            parent: n.parent,
            collector: map.hosts[0],
            got: 0,
            sum: 0,
        })
    });
    assert!(err.is_err(), "placing on a host must fail");
}
