//! Known-bad: deep-clones the packet on every delivery — a per-event
//! allocation on the simulator's hottest path. Payloads are
//! reference-counted `Bytes` precisely so handlers can share them.

impl Engine for DemoEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::PacketDelivered { sw, pkt } => {
                self.pending.push(pkt.clone());
                self.dispatch(sw, pkt, t, bus);
            }
            other => unreachable!("not a demo event: {other:?}"),
        }
        Ok(())
    }
}
