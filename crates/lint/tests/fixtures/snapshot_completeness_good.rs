//! Corrected twin: every field is either round-tripped by the
//! snapshot/restore pair (a field may legitimately appear only on the
//! restore side, e.g. a reader rebuilt over a rediscovered plan) or
//! explicitly annotated as static configuration.

pub struct ProgState {
    pub config: Config, // asan-lint: allow(snapshot-completeness)
    pub cursor: u64,
    pub pending: Vec<u64>,
    pub phase: u8,
}

impl Snapshottable for ProgState {
    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u64(self.cursor);
        w.usize(self.pending.len());
        for p in &self.pending {
            w.u64(*p);
        }
        w.u8(self.phase);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cursor = r.u64()?;
        let n = r.usize()?;
        self.pending = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.phase = r.u8()?;
        Ok(())
    }
}

pub struct ChainState {
    pub sum: u64,
    pub carry: u64,
}

impl ChainState {
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.sum);
        w.u64(self.carry);
    }
}
