//! Corrected twin: every numeric counter — including those in nested
//! snapshot structs, in all three digest roots — reaches its digest.

pub struct LinkSnapshot {
    pub bytes: u64,
    pub stalls: u64,
}

pub struct ClusterStats {
    pub events: u64,
    pub retries: u64,
    pub link: LinkSnapshot,
}

impl ClusterStats {
    pub fn digest(&self) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, self.events);
        h = fold(h, self.retries);
        h = fold(h, self.link.bytes);
        fold(h, self.link.stalls)
    }
}

pub struct MetricsReport {
    pub total_ps: u64,
    pub dropped_spans: u64,
}

impl MetricsReport {
    pub fn digest(&self) -> u64 {
        let h = fold(0xcbf2_9ce4_8422_2325, self.total_ps);
        fold(h, self.dropped_spans)
    }
}

pub struct Track {
    pub kind: u8,
    pub key: u64,
    pub samples: Vec<u64>,
}

pub struct Timeline {
    pub window_ps: u64,
    pub tracks: Vec<Track>,
}

impl Timeline {
    pub fn digest(&self, seed: u64) -> u64 {
        let mut h = fold(seed, self.window_ps);
        for t in &self.tracks {
            h = fold(h, u64::from(t.kind));
            h = fold(h, t.key);
            for &s in &t.samples {
                h = fold(h, s);
            }
        }
        h
    }
}
