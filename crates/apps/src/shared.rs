//! Sharing one handler's state across several jump-table entries.
//!
//! The jump table maps each 6-bit handler ID to its own handler object;
//! when two message flows (e.g. a data stream and its end-of-stream
//! marker, or HashJoin's build and probe phases) must update the same
//! state, register [`Shared`] clones of one inner handler under both
//! IDs.

use std::cell::RefCell;
use std::rc::Rc;

use asan_core::handler::{Handler, HandlerCtx, MsgInfo};

/// A cloneable wrapper registering one handler under several IDs.
pub struct Shared<H>(Rc<RefCell<H>>);

impl<H> Shared<H> {
    /// Wraps `inner` for shared registration.
    pub fn new(inner: H) -> Self {
        Shared(Rc::new(RefCell::new(inner)))
    }

    /// Borrows the inner handler (e.g. to read results after a run).
    pub fn inner(&self) -> std::cell::Ref<'_, H> {
        self.0.borrow()
    }
}

impl<H> Clone for Shared<H> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<H: Handler + 'static> Handler for Shared<H> {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        self.0.borrow_mut().on_message(ctx);
    }

    fn cpu_affinity(&self, msg: &MsgInfo) -> Option<usize> {
        self.0.borrow().cpu_affinity(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tally(u64);
    impl Handler for Tally {
        fn on_message(&mut self, _ctx: &mut HandlerCtx<'_>) {
            self.0 += 1;
        }
    }

    #[test]
    fn clones_share_state() {
        let a = Shared::new(Tally(0));
        let b = a.clone();
        a.0.borrow_mut().0 += 5;
        assert_eq!(b.inner().0, 5);
    }
}
