//! A minimal, dependency-free JSON reader for the analyzer.
//!
//! Parses the metrics documents `repro --metrics --json` emits (and any
//! well-formed JSON) into a [`Value`] tree. Numbers are kept as `f64`,
//! which is exact for every integral picosecond count the simulator
//! produces (all below 2^53). This is a reader for our own output — it
//! accepts strict JSON and rejects everything else with a byte offset.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (exact for integers below 2^53).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number rounded to `u64` (`None` for non-numbers or values
    /// outside `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as one JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // own output; reject them explicitly.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,{"b":"x\n"}],"c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Value::Num(2.5));
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x\n"));
    }

    #[test]
    fn exact_for_large_picosecond_counts() {
        let v = parse("{\"t\":1234567890123456}").unwrap();
        assert_eq!(
            v.get("t").and_then(Value::as_u64),
            Some(1_234_567_890_123_456)
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_input() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        let e = parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn roundtrips_metrics_report_json() {
        let mut m = asan_core::metrics::MetricsReport::default();
        m.packet_e2e.record(1000);
        m.phases.total_ps = 5000;
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("phases")
                .and_then(|p| p.get("total_ps"))
                .and_then(Value::as_u64),
            Some(5000)
        );
        let pkt = v.get("latency").and_then(|l| l.get("packet")).unwrap();
        assert_eq!(pkt.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(pkt.get("p50_ps").and_then(Value::as_u64), Some(1000));
    }
}
