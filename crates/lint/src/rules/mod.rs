//! The rule catalog.
//!
//! Each rule is a pure function over one lexed file; scoping (which
//! workspace paths a rule patrols) lives on the rule itself so the
//! driver stays generic. `--scope-all` overrides scoping, which is how
//! the fixture tests exercise rules outside their home crates.

use crate::diag::Diagnostic;
use crate::lexer::{Kind, Lexed, Token};

mod ambient_randomness;
mod digest_completeness;
mod event_exhaustiveness;
mod hot_path_clone;
mod lossy_cast;
mod snapshot_completeness;
mod unordered_iteration;
mod wall_clock;

/// One invariant check.
pub trait Rule {
    /// Stable identifier, accepted by `// asan-lint: allow(<name>)`.
    fn name(&self) -> &'static str;
    /// One-line description for `--help` / docs.
    fn describe(&self) -> &'static str;
    /// Whether the rule patrols `rel_path` (workspace-relative, `/`
    /// separators). Ignored under `--scope-all`.
    fn applies(&self, rel_path: &str) -> bool;
    /// Emits diagnostics for one file.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// Everything a rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// The lexed source.
    pub lexed: &'a Lexed,
}

impl FileCtx<'_> {
    /// Shorthand for the token slice.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// The full rule set, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(unordered_iteration::NoUnorderedIteration),
        Box::new(wall_clock::NoWallClock),
        Box::new(ambient_randomness::NoAmbientRandomness),
        Box::new(lossy_cast::LossyModelCast),
        Box::new(event_exhaustiveness::EventExhaustiveness),
        Box::new(digest_completeness::DigestCompleteness),
        Box::new(hot_path_clone::NoHotPathClone),
        Box::new(snapshot_completeness::SnapshotCompleteness),
    ]
}

/// True when the token at `i` is an identifier with text `s`.
pub(crate) fn is_ident(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Ident && t.text == s)
}

/// True when the token at `i` is the punctuation `s`.
pub(crate) fn is_punct(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == s)
}

/// Finds the matching close brace for the open brace at `open`
/// (which must be a `{`); returns its index, or `toks.len()` if
/// unbalanced.
pub(crate) fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}
