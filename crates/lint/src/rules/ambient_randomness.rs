//! Rule `no-ambient-randomness`: every random bit flows from a seed.
//!
//! The workspace is dependency-free, so `rand` cannot even build — but
//! the rule still patrols for it (and for OS entropy) so a future PR
//! that vendors an RNG cannot quietly bypass `asan_sim::rng::SimRng`,
//! whose per-stream seeding is what makes fault injection replayable.

use super::{is_ident, is_punct, FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::Kind;

pub(crate) struct NoAmbientRandomness;

impl Rule for NoAmbientRandomness {
    fn name(&self) -> &'static str {
        "no-ambient-randomness"
    }

    fn describe(&self) -> &'static str {
        "deny thread_rng / rand::random / OS entropy; RNG flows through asan_sim::rng"
    }

    fn scope(&self) -> &'static str {
        "every checked file"
    }

    fn since_pr(&self) -> u32 {
        3
    }

    fn applies(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => true,
                "rand" => is_punct(toks, i + 1, "::") && is_ident(toks, i + 2, "random"),
                _ => false,
            };
            if hit {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: Severity::Deny,
                    file: ctx.rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "ambient randomness (`{}`); derive a seeded stream from \
                         `asan_sim::rng::SimRng` instead so runs stay replayable",
                        t.text,
                    ),
                });
            }
        }
    }
}
