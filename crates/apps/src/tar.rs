//! Tar with `-cf` (§5): archive a set of input files.
//!
//! * **normal**: the host reads each input file, prepends a real ustar
//!   header, and streams header + data to the archive target (a remote
//!   storage node).
//! * **active**: the host only parses options and generates the 512 B
//!   headers; the switch handler *initiates the disk reads itself* (the
//!   only benchmark where the switch issues I/O) and redirects the file
//!   data straight to the archive node, "completely bypassing the
//!   host".
//!
//! Shape (Figures 11–12): `normal` is worst; the other three tie
//! (I/O-bound); active host utilization ≈ 0; active host I/O traffic is
//! just the 512 B headers per file.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::{ClusterConfig, Dest, FileId, HostCtx, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data;
use crate::runner::{drive, standard_cluster, AppRun, Variant};
use crate::tar_fmt;

/// Handler ID of the tar streamer.
pub const TAR_HANDLER: HandlerId = HandlerId::new_const(7);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of input files.
    pub files: usize,
    /// Bytes per input file (total 4 MB in Table 1).
    pub file_bytes: u64,
    /// I/O request size.
    pub io_block: u64,
}

impl Params {
    /// The paper's configuration: 4 MB of input as 16 × 256 KB files.
    pub fn paper() -> Self {
        Params {
            files: 16,
            file_bytes: 256 * 1024,
            io_block: 64 * 1024,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        Params {
            files: 4,
            file_bytes: 64 * 1024,
            ..Params::paper()
        }
    }

    /// Total archive size (headers + padded data + terminator).
    pub fn archive_bytes(&self) -> u64 {
        tar_fmt::archive_size(&vec![self.file_bytes; self.files])
    }
}

/// Normal-case host program: read each file, send header + data to the
/// archive node.
struct NormalTar {
    p: Params,
    files: Vec<FileId>,
    contents: Arc<Vec<Vec<u8>>>, // asan-lint: allow(snapshot-completeness)
    archive: NodeId,             // asan-lint: allow(snapshot-completeness)
    outstanding: u64,
    current: usize,
    reader: Option<BlockReader>,
    sent: u64,
}

impl NormalTar {
    fn start_file(&mut self, ctx: &mut HostCtx<'_>) {
        if self.current >= self.files.len() {
            // Two terminating zero blocks.
            ctx.send(self.archive, None, 0, vec![0u8; 1024]);
            self.sent += 1024;
            ctx.finish();
            return;
        }
        // Generate and emit the real ustar header.
        ctx.cpu().compute(cost::TAR_HEADER_INSTR);
        let h = tar_fmt::ustar_header(&format!("file{:03}", self.current), self.p.file_bytes, 0);
        ctx.send(self.archive, None, 0, h.to_vec());
        self.sent += h.len() as u64;
        let mut reader = BlockReader::new(BlockPlan {
            file: self.files[self.current],
            total: self.p.file_bytes,
            block: self.p.io_block,
            outstanding: self.outstanding,
            dest: Dest::HostBuf { addr: 0x1000_0000 },
        });
        reader.start(ctx);
        self.reader = Some(reader);
    }
}

impl HostProgram for NormalTar {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.cpu().compute(10_000); // option parsing
        self.start_file(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some(reader) = self.reader.as_mut() else {
            return;
        };
        let Some((off, len)) = reader.on_complete(ctx, req) else {
            return;
        };
        // Copy the real block out to the archive stream.
        ctx.cpu().touch_lines(
            0x1000_0000 + off,
            len,
            cost::TAR_COPY_INSTR_PER_BYTE * 64,
            false,
        );
        let bytes = self.contents[self.current][off as usize..(off + len) as usize].to_vec();
        ctx.send(self.archive, None, 0, bytes);
        self.sent += len;
        if let Some(r) = self.reader.as_mut() {
            r.refill(ctx);
        }
        let reader = self.reader.as_mut().expect("still reading");
        if reader.done() {
            self.current += 1;
            self.reader = None;
            self.start_file(ctx);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.usize(self.current);
        w.u64(self.sent);
        w.bool(self.reader.is_some());
        if let Some(reader) = &self.reader {
            reader.snapshot(w);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.current = r.usize()?;
        self.sent = r.u64()?;
        if r.bool()? {
            let file = *self
                .files
                .get(self.current)
                .ok_or(SnapError::Malformed("tar file cursor out of range"))?;
            let mut reader = BlockReader::new(BlockPlan {
                file,
                total: self.p.file_bytes,
                block: self.p.io_block,
                outstanding: self.outstanding,
                dest: Dest::HostBuf { addr: 0x1000_0000 },
            });
            reader.restore(r)?;
            self.reader = Some(reader);
        } else {
            self.reader = None;
        }
        Ok(())
    }
}

/// The tar switch handler: receives a per-file trigger carrying the
/// header, forwards the header to the archive, then pulls the file from
/// its TCA straight to the archive node.
pub struct TarHandler {
    tca: NodeId,     // asan-lint: allow(snapshot-completeness)
    archive: NodeId, // asan-lint: allow(snapshot-completeness)
    files_streamed: u64,
}

impl TarHandler {
    fn new(tca: NodeId, archive: NodeId) -> Self {
        TarHandler {
            tca,
            archive,
            files_streamed: 0,
        }
    }

    /// Files the handler has initiated streams for.
    pub fn files_streamed(&self) -> u64 {
        self.files_streamed
    }
}

impl Handler for TarHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        // Trigger payload: file id + length (the host already appended
        // the 512 B ustar header to the archive stream itself).
        let payload = ctx.payload();
        let file = u64::from_le_bytes(payload[0..8].try_into().expect("file id")) as usize;
        let len = u64::from_le_bytes(payload[8..16].try_into().expect("len"));
        // Initiate the disk read, delivering straight to the archive.
        ctx.request_disk_read(self.tca, file, 0, len, self.archive, None, 0);
        self.files_streamed += 1;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u64(self.files_streamed);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.files_streamed = r.u64()?;
        Ok(())
    }
}

/// Active-case host program: just headers and triggers.
struct ActiveTar {
    p: Params,
    files: Vec<FileId>,
    sw: NodeId,
    archive: NodeId,
}

impl HostProgram for ActiveTar {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.cpu().compute(10_000); // option parsing
        for (i, f) in self.files.clone().into_iter().enumerate() {
            ctx.cpu().compute(cost::TAR_HEADER_INSTR);
            // The host stores the real header into the archive stream…
            let h = tar_fmt::ustar_header(&format!("file{i:03}"), self.p.file_bytes, 0);
            ctx.send(self.archive, None, 0, h.to_vec());

            // …and asks the switch handler to stream the file body.
            let mut trigger = (f.0 as u64).to_le_bytes().to_vec();
            trigger.extend_from_slice(&self.p.file_bytes.to_le_bytes());
            ctx.send(self.sw, Some(TAR_HANDLER), (i as u32) * 1024, trigger);
        }
        ctx.finish();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Runs Tar in one configuration. Execution time is the archive drain
/// time (the host may finish long before the data stops flowing).
///
/// # Panics
///
/// Panics if the archive stream does not carry the expected bytes.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    let contents = Arc::new(data::file_set(p.files, p.file_bytes as usize));
    let build = || {
        // Input files on TCA 0; the archive target is TCA 1.
        let (mut cl, hs, ts, sw) = standard_cluster(1, 2, ClusterConfig::paper());
        let files: Vec<FileId> = contents
            .iter()
            .map(|c| cl.add_file(ts[0], c.clone()).expect("cluster setup"))
            .collect();
        let host = hs[0];
        let archive = ts[1];

        if variant.is_active() {
            cl.register_handler(sw, TAR_HANDLER, Box::new(TarHandler::new(ts[0], archive)))
                .expect("cluster setup");
            cl.set_program(
                host,
                Box::new(ActiveTar {
                    p: p.clone(),
                    files,
                    sw,
                    archive,
                }),
            )
            .expect("cluster setup");
        } else {
            cl.set_program(
                host,
                Box::new(NormalTar {
                    p: p.clone(),
                    files,
                    contents: contents.clone(),
                    archive,
                    outstanding: variant.outstanding(),
                    current: 0,
                    reader: None,
                    sent: 0,
                }),
            )
            .expect("cluster setup");
        }
        (cl, sw)
    };

    let (mut cl, sw, report) = drive(&format!("tar-{}", variant.label()), build);
    let streamed = if variant.is_active() {
        let handler = cl.take_handler(sw, TAR_HANDLER).expect("handler");
        let h = handler
            .as_any()
            .and_then(|a| a.downcast_ref::<TarHandler>())
            .expect("tar handler");
        assert_eq!(h.files_streamed(), p.files as u64, "all files streamed");
        h.files_streamed()
    } else {
        p.files as u64
    };
    // Tar's execution time is until the archive is fully written.
    AppRun::from_report(variant, &cl, &report, report.drain, streamed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_stream_all_files() {
        let p = Params::small();
        for v in Variant::ALL {
            let r = run(v, &p);
            assert_eq!(r.artifact, p.files as u64, "{v:?}");
        }
    }

    #[test]
    fn active_host_traffic_is_headers_only() {
        let p = Params::small();
        let normal = run(Variant::Normal, &p);
        let active = run(Variant::Active, &p);
        // Normal moves the data in AND out of the host; active moves
        // only headers + triggers.
        assert!(
            active.host_traffic * 100 < normal.host_traffic,
            "active {} vs normal {}",
            active.host_traffic,
            normal.host_traffic
        );
    }

    #[test]
    fn active_host_utilization_near_zero() {
        let p = Params::small();
        let active = run(Variant::Active, &p);
        assert!(
            active.host_utilization < 0.05,
            "util = {}",
            active.host_utilization
        );
    }
}
