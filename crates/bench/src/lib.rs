//! Benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! The `repro` binary drives full-size runs and prints the same rows
//! and series the paper reports; the Criterion benches under
//! `benches/` time the simulator itself on scaled-down configurations.
//!
//! Figures come in pairs per application: an *overall* chart
//! (execution time normalized to `normal`, host utilization, host I/O
//! traffic normalized to `normal`) and an execution-time *breakdown*
//! (CPU busy / cache stall / idle for the host CPU, plus the switch CPU
//! in the active cases).

pub mod json;
pub mod perf;
pub mod pool;
pub mod scale;
pub mod sweep;

use asan_apps::runner::AppRun;
use asan_apps::Variant;
use asan_core::metrics::{MetricsReport, PhaseBreakdown};
use asan_sim::SimDuration;

/// Renders the overall figure (e.g. Figure 3: exec time, host
/// utilization, host I/O traffic; first row is the normalization base).
pub fn overall_table(title: &str, runs: &[AppRun]) -> String {
    let base = runs
        .iter()
        .find(|r| r.variant == Variant::Normal)
        .expect("normal run present");
    let base_exec = base.exec.as_ps().max(1) as f64;
    let base_traffic = base.host_traffic.max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>10} {:>10} {:>12} {:>10}\n",
        "config", "exec", "norm.time", "speedup", "host util", "traffic"
    ));
    for r in runs {
        let norm = r.exec.as_ps() as f64 / base_exec;
        out.push_str(&format!(
            "{:<14} {:>12} {:>10.3} {:>10.2} {:>11.1}% {:>10.3}\n",
            r.variant.label(),
            format!("{}", r.exec),
            norm,
            1.0 / norm,
            r.host_utilization * 100.0,
            r.host_traffic as f64 / base_traffic,
        ));
    }
    out
}

/// Renders the breakdown figure (e.g. Figure 4: busy / cache-stall /
/// idle shares for host and switch CPUs).
pub fn breakdown_table(title: &str, runs: &[AppRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}\n",
        "cpu", "busy%", "stall%", "idle%", "total"
    ));
    for r in runs {
        let b = &r.host_breakdown;
        let t = b.total().as_ps().max(1) as f64;
        out.push_str(&format!(
            "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
            format!("{}-HP", r.variant.short()),
            b.busy.as_ps() as f64 / t * 100.0,
            b.stall.as_ps() as f64 / t * 100.0,
            b.idle.as_ps() as f64 / t * 100.0,
            format!("{}", b.total()),
        ));
        for (i, sb) in r.switch_breakdowns.iter().enumerate() {
            let st = sb.total().as_ps().max(1) as f64;
            let tag = if r.switch_breakdowns.len() > 1 {
                format!("{}-SP{}", r.variant.short(), i)
            } else {
                format!("{}-SP", r.variant.short())
            };
            out.push_str(&format!(
                "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
                tag,
                sb.busy.as_ps() as f64 / st * 100.0,
                sb.stall.as_ps() as f64 / st * 100.0,
                sb.idle.as_ps() as f64 / st * 100.0,
                format!("{}", sb.total()),
            ));
        }
    }
    out
}

/// Renders an overall figure as CSV (`experiment,config,exec_ps,
/// normalized_time,host_utilization,traffic_ratio`), for plotting.
pub fn overall_csv(experiment: &str, runs: &[AppRun]) -> String {
    let base = runs
        .iter()
        .find(|r| r.variant == Variant::Normal)
        .expect("normal run present");
    let base_exec = base.exec.as_ps().max(1) as f64;
    let base_traffic = base.host_traffic.max(1) as f64;
    let mut out = String::from(
        "experiment,config,exec_ps,normalized_time,host_utilization,traffic_ratio
",
    );
    for r in runs {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6}
",
            experiment,
            r.variant.label(),
            r.exec.as_ps(),
            r.exec.as_ps() as f64 / base_exec,
            r.host_utilization,
            r.host_traffic as f64 / base_traffic,
        ));
    }
    out
}

/// Latency percentile summary of one span kind, as carried in the
/// metrics JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Span name ("packet", "handler", "disk", "buffer_wait",
    /// "credit_stall").
    pub span: String,
    /// Number of recorded spans.
    pub count: u64,
    /// 50th-percentile latency (simulated picoseconds).
    pub p50_ps: u64,
    /// 90th-percentile latency.
    pub p90_ps: u64,
    /// 99th-percentile latency.
    pub p99_ps: u64,
}

/// One benchmark × configuration row of a metrics document: the phase
/// breakdown plus the latency percentile summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMetrics {
    /// Benchmark name ("mpeg", "grep", …).
    pub name: String,
    /// Configuration label ("normal", "active").
    pub config: String,
    /// Where the run's simulated cycles went.
    pub phases: PhaseBreakdown,
    /// Percentile summaries, in the report's canonical span order.
    pub latency: Vec<LatencySummary>,
}

impl BenchMetrics {
    /// Summarizes a full [`MetricsReport`] into one row (the in-process
    /// equivalent of emitting JSON and parsing it back).
    pub fn from_report(name: &str, config: &str, m: &MetricsReport) -> BenchMetrics {
        BenchMetrics {
            name: name.to_string(),
            config: config.to_string(),
            phases: m.phases,
            latency: m
                .latencies()
                .iter()
                .map(|(span, h)| LatencySummary {
                    span: (*span).to_string(),
                    count: h.count(),
                    p50_ps: h.percentile(50),
                    p90_ps: h.percentile(90),
                    p99_ps: h.percentile(99),
                })
                .collect(),
        }
    }
}

/// Emits the metrics JSON document for a set of benchmark runs:
/// `{"benchmarks":[{"name":…,"config":…,"metrics":{…}},…]}`, with each
/// `metrics` member being [`MetricsReport::to_json`]. Deterministic:
/// fixed field order, integral picoseconds.
pub fn metrics_json(rows: &[(&str, &str, &MetricsReport)]) -> String {
    let mut out = String::from("{\"benchmarks\":[");
    for (i, (name, config, m)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"config\":\"{config}\",\"metrics\":{}}}",
            m.to_json()
        ));
    }
    out.push_str("]}");
    out
}

/// Parses a metrics JSON document (as produced by [`metrics_json`])
/// back into rows.
///
/// # Errors
///
/// Returns a description of the first malformed or missing field.
pub fn parse_metrics_doc(text: &str) -> Result<Vec<BenchMetrics>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let benches = doc
        .get("benchmarks")
        .and_then(json::Value::as_arr)
        .ok_or("missing \"benchmarks\" array")?;
    let field = |v: &json::Value, k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("missing numeric field {k:?}"))
    };
    let mut rows = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or("missing \"name\"")?
            .to_string();
        let config = b
            .get("config")
            .and_then(json::Value::as_str)
            .ok_or("missing \"config\"")?
            .to_string();
        let m = b.get("metrics").ok_or("missing \"metrics\"")?;
        let p = m.get("phases").ok_or("missing \"phases\"")?;
        let phases = PhaseBreakdown {
            host_ps: field(p, "host_ps")?,
            fabric_ps: field(p, "fabric_ps")?,
            handler_ps: field(p, "handler_ps")?,
            storage_ps: field(p, "storage_ps")?,
            total_ps: field(p, "total_ps")?,
        };
        let lat = m.get("latency").ok_or("missing \"latency\"")?;
        let mut latency = Vec::new();
        if let json::Value::Obj(members) = lat {
            for (span, v) in members {
                latency.push(LatencySummary {
                    span: span.clone(),
                    count: field(v, "count")?,
                    p50_ps: field(v, "p50_ps")?,
                    p90_ps: field(v, "p90_ps")?,
                    p99_ps: field(v, "p99_ps")?,
                });
            }
        }
        rows.push(BenchMetrics {
            name,
            config,
            phases,
            latency,
        });
    }
    Ok(rows)
}

/// Renders the paper-style per-phase time-breakdown table: one row per
/// benchmark × configuration, phase occupancy as a share of total run
/// time. Phases overlap in time, so rows need not sum to 100%.
pub fn phase_breakdown_report(rows: &[BenchMetrics]) -> String {
    let mut out = String::new();
    out.push_str("== Per-phase time breakdown (share of total run time) ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:>7} {:>8} {:>9} {:>9} {:>12}\n",
        "benchmark", "config", "host%", "fabric%", "handler%", "storage%", "total"
    ));
    for r in rows {
        let p = &r.phases;
        out.push_str(&format!(
            "{:<20} {:<8} {:>6.1}% {:>7.1}% {:>8.1}% {:>8.1}% {:>12}\n",
            r.name,
            r.config,
            p.share(p.host_ps) * 100.0,
            p.share(p.fabric_ps) * 100.0,
            p.share(p.handler_ps) * 100.0,
            p.share(p.storage_ps) * 100.0,
            format!("{}", SimDuration::from_ps(p.total_ps)),
        ));
    }
    out
}

/// Renders the latency-percentile table: p50/p90/p99 per span kind for
/// every benchmark × configuration row.
pub fn latency_report(rows: &[BenchMetrics]) -> String {
    let mut out = String::new();
    out.push_str("== Latency percentiles (simulated time) ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:<13} {:>9} {:>12} {:>12} {:>12}\n",
        "benchmark", "config", "span", "count", "p50", "p90", "p99"
    ));
    for r in rows {
        for l in &r.latency {
            out.push_str(&format!(
                "{:<20} {:<8} {:<13} {:>9} {:>12} {:>12} {:>12}\n",
                r.name,
                r.config,
                l.span,
                l.count,
                format!("{}", SimDuration::from_ps(l.p50_ps)),
                format!("{}", SimDuration::from_ps(l.p90_ps)),
                format!("{}", SimDuration::from_ps(l.p99_ps)),
            ));
        }
    }
    out
}

/// Extracts the headline speedups (active vs normal, active+pref vs
/// normal+pref) for EXPERIMENTS.md-style summaries.
pub fn speedups(runs: &[AppRun]) -> (f64, f64) {
    let get = |v: Variant| {
        runs.iter()
            .find(|r| r.variant == v)
            .expect("variant present")
            .exec
            .as_ps() as f64
    };
    (
        get(Variant::Normal) / get(Variant::Active),
        get(Variant::NormalPref) / get(Variant::ActivePref),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_sim::stats::TimeBreakdown;
    use asan_sim::{SimDuration, SimTime};

    fn fake(variant: Variant, exec_ns: u64, traffic: u64) -> AppRun {
        AppRun {
            variant,
            exec: SimTime::from_ns(exec_ns),
            host_breakdown: TimeBreakdown {
                busy: SimDuration::from_ns(exec_ns / 2),
                stall: SimDuration::from_ns(exec_ns / 4),
                idle: SimDuration::from_ns(exec_ns / 4),
            },
            switch_breakdowns: vec![],
            host_traffic: traffic,
            host_utilization: 0.75,
            link_bytes: 0,
            artifact: 0,
            stats_digest: 0,
            metrics: MetricsReport::default(),
            events: 0,
            peak_queue: 0,
            faults: asan_sim::faults::FaultStats::default(),
        }
    }

    #[test]
    fn overall_table_normalizes_to_normal() {
        let runs = vec![
            fake(Variant::Normal, 1000, 100),
            fake(Variant::Active, 500, 25),
        ];
        let t = overall_table("Figure X", &runs);
        assert!(t.contains("Figure X"));
        assert!(t.contains("normal"));
        assert!(t.contains("active"));
        assert!(t.contains("2.00"), "table:\n{t}");
        assert!(t.contains("0.250"), "traffic ratio:\n{t}");
    }

    #[test]
    fn breakdown_table_shows_shares() {
        let runs = vec![fake(Variant::NormalPref, 1000, 1)];
        let t = breakdown_table("Figure Y", &runs);
        assert!(t.contains("n+p-HP"));
        assert!(t.contains("50.0%"));
        assert!(t.contains("25.0%"));
    }

    #[test]
    fn overall_csv_has_header_and_rows() {
        let runs = vec![
            fake(Variant::Normal, 1000, 100),
            fake(Variant::Active, 500, 25),
        ];
        let csv = overall_csv("fig3", &runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("experiment,config"));
        assert!(lines[1].starts_with("fig3,normal,1000000,1.000000"));
        assert!(lines[2].contains("fig3,active,500000,0.500000"));
    }

    fn fake_metrics() -> MetricsReport {
        let mut m = MetricsReport::default();
        for v in [1_000u64, 2_000, 4_000] {
            m.packet_e2e.record(v);
            m.handler_occupancy.record(v * 2);
        }
        m.disk_service.record(1_000_000);
        m.phases = PhaseBreakdown {
            host_ps: 500_000,
            fabric_ps: 7_000,
            handler_ps: 14_000,
            storage_ps: 1_000_000,
            total_ps: 2_000_000,
        };
        m
    }

    #[test]
    fn metrics_json_roundtrips_through_the_parser() {
        let m = fake_metrics();
        let doc = metrics_json(&[("grep", "normal", &m), ("grep", "active", &m)]);
        let rows = parse_metrics_doc(&doc).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "grep");
        assert_eq!(rows[1].config, "active");
        assert_eq!(rows[0].phases, m.phases);
        let direct = BenchMetrics::from_report("grep", "normal", &m);
        assert_eq!(rows[0], direct, "JSON roundtrip equals in-process summary");
        assert_eq!(rows[0].latency.len(), 5);
        assert_eq!(rows[0].latency[0].span, "packet");
        assert_eq!(rows[0].latency[0].count, 3);
    }

    #[test]
    fn phase_and_latency_reports_render() {
        let m = fake_metrics();
        let rows = vec![
            BenchMetrics::from_report("mpeg", "normal", &m),
            BenchMetrics::from_report("mpeg", "active", &m),
        ];
        let pt = phase_breakdown_report(&rows);
        assert!(pt.contains("benchmark"), "table:\n{pt}");
        assert!(pt.contains("mpeg"));
        assert!(pt.contains("25.0%"), "host share 0.5/2.0:\n{pt}");
        assert!(pt.contains("50.0%"), "storage share 1.0/2.0:\n{pt}");
        let lt = latency_report(&rows);
        assert!(lt.contains("packet"));
        assert!(lt.contains("p99"));
        assert!(lt.contains("disk"));
    }

    #[test]
    fn parse_metrics_doc_rejects_malformed_input() {
        assert!(parse_metrics_doc("{}").is_err());
        assert!(parse_metrics_doc("not json").is_err());
        assert!(parse_metrics_doc("{\"benchmarks\":[{\"name\":\"x\"}]}").is_err());
    }

    #[test]
    fn speedups_extracts_ratios() {
        let runs = vec![
            fake(Variant::Normal, 1000, 1),
            fake(Variant::NormalPref, 800, 1),
            fake(Variant::Active, 500, 1),
            fake(Variant::ActivePref, 400, 1),
        ];
        let (s, sp) = speedups(&runs);
        assert!((s - 2.0).abs() < 1e-9);
        assert!((sp - 2.0).abs() < 1e-9);
    }
}
