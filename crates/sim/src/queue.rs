//! Deterministic pending-event set.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that orders
//! events by `(time, sequence)`. The monotonically increasing sequence
//! number guarantees FIFO ordering among events scheduled for the same
//! instant, which makes whole-system simulations reproducible regardless
//! of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// # Example
///
/// ```
/// use asan_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(10), 'b');
/// q.push(SimTime::from_ns(10), 'c'); // same time: FIFO after 'b'
/// q.push(SimTime::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(3), 3u32);
        q.push(SimTime::from_ns(1), 1);
        q.push(SimTime::from_ns(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_ns(5), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_ns(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "late");
        q.push(SimTime::from_ns(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_ns(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
