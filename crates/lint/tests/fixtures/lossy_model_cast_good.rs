//! Corrected twin: truncation is loud (`try_from` + `expect`) or the
//! counter keeps its full width.

pub fn book_transfer(total_bytes: u64, elapsed_ns: u64) -> (u64, u32) {
    (
        total_bytes,
        u32::try_from(elapsed_ns).expect("window bounded well below 4s"),
    )
}
