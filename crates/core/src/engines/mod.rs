//! The four subsystem engines the cluster simulation is composed of.
//!
//! Each engine owns one subsystem's private state and handles the
//! [`Event`] variants routed to it (see [`route`]):
//!
//! * [`HostEngine`] — program scheduling, CPU/memory charging, host
//!   message delivery and I/O completion;
//! * [`FabricEngine`] — the packet reliability protocol: injection,
//!   fault fates, NAK/timeout retransmission, completion notices;
//! * [`DispatchEngine`] — active switches and active TCAs: handler
//!   dispatch, the mapped-flow reorder buffer, handler-trap migration
//!   to a host-side fallback engine;
//! * [`StorageEngine`] — TCA/SCSI/disk requests, read scheduling, and
//!   archive-write aggregation.
//!
//! Engines never call each other: cross-subsystem effects travel as
//! events through the [`EventBus`], so every interaction is an ordered,
//! timestamped occurrence in the deterministic event queue.
//!
//! # Adding an engine
//!
//! 1. Add the subsystem's events to [`Event`] (with a `trace_label`).
//! 2. Map them to a new [`Subsystem`] variant in [`route`].
//! 3. Implement [`Engine::on_event`] over those variants, reaching
//!    shared services only through the [`EventBus`].
//! 4. Compose it in [`crate::cluster::Cluster`]: construct it in
//!    `new`, route to it in `handle`, and fold its counters into
//!    `stats`/`RunReport` if it reports any.

pub mod dispatch;
pub mod fabric;
pub mod host;
pub mod storage;

#[cfg(test)]
mod tests;

pub use dispatch::DispatchEngine;
pub use fabric::FabricEngine;
pub use host::{HostCtx, HostEngine, HostProgram};
pub use storage::StorageEngine;

use asan_sim::SimTime;

use crate::error::SimError;
use crate::events::{Event, EventBus};

/// One subsystem engine: handles the events routed to it, using the
/// bus for everything shared and scheduling follow-up events for
/// anything that crosses a subsystem boundary.
pub trait Engine {
    /// Handles one event popped at time `t`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the simulated system itself fails
    /// hard (e.g. [`SimError::RetriesExhausted`] under fault
    /// injection).
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError>;
}

/// The subsystem owning each event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Host programs and their CPUs.
    Host,
    /// The packet reliability protocol.
    Fabric,
    /// Active switches / active TCAs.
    Dispatch,
    /// TCAs and their disk arrays.
    Storage,
}

/// Routes an event to the engine that owns it.
pub fn route(ev: &Event) -> Subsystem {
    match ev {
        Event::Start(_) | Event::PacketToHost { .. } | Event::IoComplete { .. } => Subsystem::Host,
        Event::InjectIoPacket { .. }
        | Event::Retransmit { .. }
        | Event::RequestTimeout { .. }
        | Event::CompletionNotice { .. } => Subsystem::Fabric,
        Event::PacketToSwitch { .. } | Event::FallbackDispatch { .. } => Subsystem::Dispatch,
        Event::PacketToTca { .. } | Event::IoRequestAtTca { .. } | Event::SwitchIoAtTca { .. } => {
            Subsystem::Storage
        }
    }
}
