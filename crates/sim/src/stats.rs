//! Statistics primitives used for the paper's metrics.
//!
//! The evaluation section reports, per benchmark and configuration:
//! execution time (normalized), host processor utilization
//! `(1 - idle/exec)`, host I/O traffic, and an execution-time breakdown
//! into CPU-busy, cache-stall and idle components. The types here gather
//! the raw ingredients of those metrics.

use std::fmt;

use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// A simple named event counter.
///
/// # Example
///
/// ```
/// use asan_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Writes the count.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }

    /// Reads a count written by [`Counter::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Counter(r.u64()?))
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Accumulates a CPU's time breakdown: busy, memory (cache) stall, and
/// idle time, in the style of Figures 4/6/8/10/12/14 of the paper.
///
/// The three components are disjoint by construction: the CPU models add
/// to exactly one bucket for every interval of simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Time spent executing instructions.
    pub busy: SimDuration,
    /// Time stalled waiting on the memory hierarchy (cache/TLB/DRAM).
    pub stall: SimDuration,
    /// Time with no work available (waiting on I/O or messages).
    pub idle: SimDuration,
}

impl TimeBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> SimDuration {
        self.busy + self.stall + self.idle
    }

    /// Utilization as defined in the paper: `(1 - idle) / total`.
    ///
    /// Returns 0 when no time has been accounted.
    pub fn utilization(&self) -> f64 {
        let total = self.total().as_ps();
        if total == 0 {
            return 0.0;
        }
        (total - self.idle.as_ps()) as f64 / total as f64
    }

    /// Fraction of total time spent in memory stalls.
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total().as_ps();
        if total == 0 {
            return 0.0;
        }
        self.stall.as_ps() as f64 / total as f64
    }

    /// Extends the idle component so the breakdown covers `total`
    /// (used at end of run: a CPU that finished early idles to the end).
    pub fn pad_idle_to(&mut self, total: SimDuration) {
        let t = self.total();
        if total > t {
            self.idle += total - t;
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            busy: self.busy + other.busy,
            stall: self.stall + other.stall,
            idle: self.idle + other.idle,
        }
    }

    /// Writes all three components.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.dur(self.busy);
        w.dur(self.stall);
        w.dur(self.idle);
    }

    /// Reads a breakdown written by [`TimeBreakdown::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimeBreakdown {
            busy: r.dur()?,
            stall: r.dur()?,
            idle: r.dur()?,
        })
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy={} stall={} idle={}",
            self.busy, self.stall, self.idle
        )
    }
}

/// Tracks bytes moved across an interface (e.g. "host I/O traffic": all
/// data in/out of the host, Figures 3/5/9/11/13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes into the observed component.
    pub bytes_in: u64,
    /// Bytes out of the observed component.
    pub bytes_out: u64,
}

impl Traffic {
    /// Total bytes in either direction.
    pub fn total(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Records `n` bytes inbound.
    pub fn record_in(&mut self, n: u64) {
        self.bytes_in += n;
    }

    /// Records `n` bytes outbound.
    pub fn record_out(&mut self, n: u64) {
        self.bytes_out += n;
    }

    /// Writes both directions.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.bytes_in);
        w.u64(self.bytes_out);
    }

    /// Reads traffic written by [`Traffic::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Traffic {
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
        })
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in={}B out={}B", self.bytes_in, self.bytes_out)
    }
}

/// A running min/max/mean over `u64` samples (queue depths, latencies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Summary {
    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Writes the running aggregate, including the exact `u128` sum.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.u128(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    /// Reads a summary written by [`Summary::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Summary {
            count: r.u64()?,
            sum: r.u128()?,
            min: r.u64()?,
            max: r.u64()?,
        })
    }
}

/// Tracks a busy/idle state machine over simulated time; used to compute
/// link and switch-CPU occupancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusyTracker {
    busy_since: Option<SimTime>,
    accumulated: SimDuration,
}

impl BusyTracker {
    /// Marks the component busy starting at `now` (idempotent).
    pub fn set_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Marks the component idle at `now`, accumulating the busy span.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the busy start.
    pub fn set_idle(&mut self, now: SimTime) {
        if let Some(start) = self.busy_since.take() {
            self.accumulated += now.since(start);
        }
    }

    /// Total busy time accumulated, counting an open busy span up to `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(start) => self.accumulated + now.since(start),
            None => self.accumulated,
        }
    }

    /// Whether the component is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Writes the accumulated busy time and any open busy span.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.opt_time(self.busy_since);
        w.dur(self.accumulated);
    }

    /// Reads a tracker written by [`BusyTracker::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(BusyTracker {
            busy_since: r.opt_time()?,
            accumulated: r.dur()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn breakdown_utilization_matches_paper_definition() {
        let b = TimeBreakdown {
            busy: SimDuration::from_ns(30),
            stall: SimDuration::from_ns(20),
            idle: SimDuration::from_ns(50),
        };
        assert_eq!(b.total(), SimDuration::from_ns(100));
        assert!((b.utilization() - 0.5).abs() < 1e-12);
        assert!((b.stall_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn breakdown_empty_is_zero_utilization() {
        let b = TimeBreakdown::default();
        assert_eq!(b.utilization(), 0.0);
        assert_eq!(b.stall_fraction(), 0.0);
    }

    #[test]
    fn pad_idle_extends_only_forward() {
        let mut b = TimeBreakdown {
            busy: SimDuration::from_ns(10),
            ..TimeBreakdown::default()
        };
        b.pad_idle_to(SimDuration::from_ns(25));
        assert_eq!(b.idle, SimDuration::from_ns(15));
        // Padding to a smaller total is a no-op.
        b.pad_idle_to(SimDuration::from_ns(5));
        assert_eq!(b.total(), SimDuration::from_ns(25));
    }

    #[test]
    fn merged_sums_components() {
        let a = TimeBreakdown {
            busy: SimDuration::from_ns(1),
            stall: SimDuration::from_ns(2),
            idle: SimDuration::from_ns(3),
        };
        let m = a.merged(&a);
        assert_eq!(m.busy, SimDuration::from_ns(2));
        assert_eq!(m.stall, SimDuration::from_ns(4));
        assert_eq!(m.idle, SimDuration::from_ns(6));
    }

    #[test]
    fn traffic_totals() {
        let mut t = Traffic::default();
        t.record_in(100);
        t.record_out(50);
        assert_eq!(t.total(), 150);
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let mut s = Summary::default();
        assert!(s.min().is_none());
        for v in [5u64, 1, 9, 5] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let mut c = Counter::default();
        c.add(11);
        let b = TimeBreakdown {
            busy: SimDuration::from_ns(1),
            stall: SimDuration::from_ns(2),
            idle: SimDuration::from_ns(3),
        };
        let mut t = Traffic::default();
        t.record_in(9);
        t.record_out(4);
        let mut s = Summary::default();
        s.record(3);
        s.record(u64::MAX); // exercises the u128 sum
        let mut bt = BusyTracker::default();
        bt.set_busy(SimTime::from_ns(2));
        bt.set_idle(SimTime::from_ns(5));
        bt.set_busy(SimTime::from_ns(7)); // open span must survive

        let mut w = SnapWriter::new();
        c.snapshot(&mut w);
        b.snapshot(&mut w);
        t.snapshot(&mut w);
        s.snapshot(&mut w);
        bt.snapshot(&mut w);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(Counter::restore(&mut r).unwrap(), c);
        assert_eq!(TimeBreakdown::restore(&mut r).unwrap(), b);
        assert_eq!(Traffic::restore(&mut r).unwrap(), t);
        assert_eq!(Summary::restore(&mut r).unwrap(), s);
        let bt2 = BusyTracker::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert!(bt2.is_busy());
        assert_eq!(
            bt2.busy_time(SimTime::from_ns(10)),
            bt.busy_time(SimTime::from_ns(10))
        );
    }

    #[test]
    fn busy_tracker_accumulates_spans() {
        let mut b = BusyTracker::default();
        b.set_busy(SimTime::from_ns(10));
        assert!(b.is_busy());
        b.set_busy(SimTime::from_ns(12)); // idempotent
        b.set_idle(SimTime::from_ns(20));
        assert!(!b.is_busy());
        assert_eq!(b.busy_time(SimTime::from_ns(100)), SimDuration::from_ns(10));
        b.set_busy(SimTime::from_ns(30));
        // Open span counts up to `now`.
        assert_eq!(b.busy_time(SimTime::from_ns(35)), SimDuration::from_ns(15));
    }
}
