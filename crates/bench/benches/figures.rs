//! Wall-clock benches: time the simulator itself on scaled-down
//! configurations of every figure's workload. The *results* of the
//! figures come from the `repro` binary; these benches track the cost
//! of producing them. Plain `main()` harness — no external deps.

use std::time::Instant;

use asan_apps::{grep, hashjoin, md5app, mpeg, psort, reduce, select, tar, Variant};

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warm-up, then the timed batch.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("{name:<32} {per:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    println!("== figures: simulator cost per scaled-down workload ==");
    bench("fig3_mpeg_active_pref", 5, || {
        let p = mpeg::Params::small();
        mpeg::run(Variant::ActivePref, &p);
    });
    bench("fig5_hashjoin_active_pref", 5, || {
        let p = hashjoin::Params::small();
        hashjoin::run(Variant::ActivePref, &p);
    });
    bench("fig7_select_active_pref", 5, || {
        let p = select::Params::small();
        select::run(Variant::ActivePref, &p);
    });
    bench("fig9_grep_active_pref", 5, || {
        let p = grep::Params::small();
        grep::run(Variant::ActivePref, &p);
    });
    bench("fig11_tar_active", 5, || {
        let p = tar::Params::small();
        tar::run(Variant::Active, &p);
    });
    bench("fig13_psort_active_pref", 5, || {
        let p = psort::Params::small();
        psort::run(Variant::ActivePref, &p);
    });
    bench("fig15_reduce_to_one_16", 5, || {
        reduce::run(reduce::Mode::ReduceToOne, true, 16);
    });
    bench("fig16_distributed_16", 5, || {
        reduce::run(reduce::Mode::Distributed, true, 16);
    });
    bench("fig17_md5_4cpu", 5, || {
        let p = md5app::Params {
            switch_cpus: 4,
            ..md5app::Params::small()
        };
        md5app::run(Variant::Active, &p);
    });
}
