//! Two-level active I/O: the §6 extension, comparing where the
//! intelligence lives for a database selection — host, switch, disk
//! (TCA), or disk + switch.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example two_level_io
//! ```

use asan_apps::select;
use asan_apps::twolevel::{run, Placement};

fn main() {
    let p = select::Params {
        table_bytes: 8 << 20,
        ..select::Params::paper()
    };
    println!(
        "Select over {} MB: four placements of the filter\n",
        p.table_bytes >> 20
    );
    println!(
        "{:<16} {:>12} {:>16} {:>16}",
        "placement", "exec", "bytes to host", "SAN link bytes"
    );
    for pl in Placement::ALL {
        let r = run(pl, &p);
        println!(
            "{:<16} {:>12} {:>16} {:>16}",
            r.placement.label(),
            format!("{}", r.exec),
            r.host_traffic,
            r.san_bytes
        );
    }
    println!(
        "\nEach level of offload halves what the level above must carry:\n\
         the active disk spares the SAN, the switch aggregation stage\n\
         spares the host entirely (8 bytes: the count). All four runs\n\
         verified the same match count against a pure-Rust reference."
    );
}
