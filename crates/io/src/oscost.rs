//! Operating-system I/O overhead model.
//!
//! §4: "We account for I/O-related operating system overhead by charging
//! 30 us of fixed cost per request and 0.27 us/KB for each unbuffered
//! disk request. These numbers were obtained from measurement and
//! calculation and were validated against measurements presented in
//! [Chung et al., MS-TR-2000-55]."

use asan_sim::SimDuration;

/// The fixed-cost OS model for I/O requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsCost {
    /// Fixed cost per I/O request (syscall, request setup, interrupt).
    pub per_request: SimDuration,
    /// Marginal cost per KB transferred (unbuffered path).
    pub per_kb_ns: u64,
    /// Fixed cost to issue a request whose data is delivered to an
    /// active switch: the buffer mapping is pre-established and no
    /// completion interrupt copies data, so only a light descriptor
    /// post remains (§5 Tar: "most of the busy time in the normal cases
    /// is disk I/O-related overhead like interrupt processing, all of
    /// which is eliminated in the active switch version").
    pub active_request: SimDuration,
}

impl OsCost {
    /// The paper's constants: 30 µs + 0.27 µs/KB.
    pub fn paper() -> Self {
        OsCost {
            per_request: SimDuration::from_us(30),
            per_kb_ns: 270,
            active_request: SimDuration::from_us(5),
        }
    }

    /// A reduced-cost model for requests *initiated by an active switch
    /// handler* (§2.1: the switch runs a small embedded kernel; §5 Tar:
    /// "most of the busy time in the normal cases is disk I/O-related
    /// overhead like interrupt processing, all of which is eliminated in
    /// the active switch version"). The TCA-side request path has no
    /// general-purpose OS: a fraction of the fixed cost remains.
    pub fn switch_kernel() -> Self {
        OsCost {
            per_request: SimDuration::from_us(3),
            per_kb_ns: 27,
            active_request: SimDuration::from_us(3),
        }
    }

    /// Host CPU time consumed by a request of `bytes` bytes.
    pub fn request_cost(&self, bytes: u64) -> SimDuration {
        self.per_request + SimDuration::from_ns_f64(bytes as f64 * self.per_kb_ns as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = OsCost::paper();
        // A 64 KB request: 30 us + 64 * 0.27 us = 47.28 us.
        assert_eq!(c.request_cost(65536).as_ns(), 47_280);
        // A zero-byte request still pays the fixed cost.
        assert_eq!(c.request_cost(0), SimDuration::from_us(30));
    }

    #[test]
    fn per_kb_cost_is_fractional() {
        let c = OsCost::paper();
        // 512 B = half a KB = 135 ns marginal.
        assert_eq!(c.request_cost(512).as_ns(), 30_135);
    }

    #[test]
    fn switch_kernel_is_much_cheaper() {
        let host = OsCost::paper().request_cost(65536);
        let sw = OsCost::switch_kernel().request_cost(65536);
        assert!(sw.as_ns() * 5 < host.as_ns());
    }
}
