//! Simulated time in picoseconds.
//!
//! Picosecond resolution makes every clock in the modeled system exact:
//! a 2 GHz host cycle is 500 ps, a 500 MHz switch cycle is 2000 ps, and a
//! 1 GB/s link serializes one byte in ~931 ps (we round per-transfer, not
//! per-byte, so no cumulative drift). A `u64` of picoseconds covers about
//! 213 days of simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, measured in picoseconds from the
/// start of the simulation.
///
/// `SimTime` is ordered, so it can key the event queue directly.
///
/// # Example
///
/// ```
/// use asan_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ns(100);
/// assert_eq!(t.as_ps(), 100_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in picoseconds.
///
/// # Example
///
/// ```
/// use asan_sim::SimDuration;
/// let d = SimDuration::from_us(30); // the paper's fixed OS cost per I/O
/// assert_eq!(d.as_ns(), 30_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel when searching for the earliest next event.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Raw picoseconds since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time since start, in nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Time since start, in seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() with a later time");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition: clamps at [`SimTime::MAX`] instead of
    /// wrapping. Use wherever a schedule point is derived from an
    /// unbounded duration (e.g. exponentially backed-off timeouts) so
    /// arithmetic near the time horizon cannot wrap into the past.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from a (possibly fractional) number of
    /// nanoseconds, rounding to the nearest picosecond.
    ///
    /// Useful for derived quantities like "0.27 µs per KB".
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimDuration((ns * 1_000.0).round() as u64)
    }

    /// The time it takes to transfer `bytes` at `bytes_per_sec`, rounded
    /// up to the next picosecond.
    ///
    /// # Example
    ///
    /// ```
    /// use asan_sim::SimDuration;
    /// // 512 B over a 1 GB/s link = 512 ns.
    /// let d = SimDuration::transfer(512, 1_000_000_000);
    /// assert_eq!(d.as_ns(), 512);
    /// ```
    #[inline]
    pub fn transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero bandwidth");
        // ps = bytes * 1e12 / B/s, computed in u128 to avoid overflow.
        let ps = (bytes as u128 * 1_000_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ps as u64)
    }

    /// The duration of `cycles` cycles of a clock at `hz`.
    ///
    /// # Example
    ///
    /// ```
    /// use asan_sim::SimDuration;
    /// assert_eq!(SimDuration::cycles(4, 2_000_000_000).as_ps(), 2_000);
    /// ```
    #[inline]
    pub fn cycles(cycles: u64, hz: u64) -> Self {
        assert!(hz > 0, "zero frequency");
        let ps = (cycles as u128 * 1_000_000_000_000u128).div_ceil(hz as u128);
        SimDuration(ps as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition: clamps at `u64::MAX` picoseconds instead
    /// of wrapping. Exponential-backoff doubling must use this — a
    /// plain `+` wraps once the doubled timeout passes the `u64`
    /// horizon and schedules retries in the simulated past.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

fn format_ps(ps: u64) -> String {
    if ps == 0 {
        "0ps".to_owned()
    } else if ps.is_multiple_of(1_000_000_000_000) {
        format!("{}s", ps / 1_000_000_000_000)
    } else if ps >= 1_000_000_000_000 {
        format!("{:.3}s", ps as f64 * 1e-12)
    } else if ps >= 1_000_000_000 {
        format!("{:.3}ms", ps as f64 * 1e-9)
    } else if ps >= 1_000_000 {
        format!("{:.3}us", ps as f64 * 1e-6)
    } else if ps >= 1_000 {
        format!("{:.3}ns", ps as f64 * 1e-3)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(7);
        assert_eq!(t.as_ps(), 7_000);
        let t2 = t + SimDuration::from_ps(500);
        assert_eq!(t2.as_ps(), 7_500);
        assert_eq!(t2.since(t), SimDuration::from_ps(500));
        assert_eq!(t2 - t, SimDuration::from_ps(500));
    }

    #[test]
    fn host_and_switch_cycles_are_exact() {
        // 2 GHz host: 500 ps; 500 MHz switch: 2000 ps.
        assert_eq!(SimDuration::cycles(1, 2_000_000_000).as_ps(), 500);
        assert_eq!(SimDuration::cycles(1, 500_000_000).as_ps(), 2_000);
        assert_eq!(SimDuration::cycles(3, 2_000_000_000).as_ps(), 1_500);
    }

    #[test]
    fn transfer_durations_match_paper_parameters() {
        // 512 B at 1 GB/s (link) = 512 ns.
        assert_eq!(SimDuration::transfer(512, 1_000_000_000).as_ns(), 512);
        // 64 KB at 100 MB/s (both disks) = 655.36 us.
        let d = SimDuration::transfer(65536, 100_000_000);
        assert_eq!(d.as_us(), 655);
        // 512 B at 320 MB/s (SCSI) = 1.6 us.
        assert_eq!(SimDuration::transfer(512, 320_000_000).as_ns(), 1_600);
    }

    #[test]
    fn transfer_rounds_up() {
        // 1 byte at 3 B/s: 1/3 s -> strictly greater than 333333333333 ps.
        let d = SimDuration::transfer(1, 3);
        assert_eq!(d.as_ps(), 333_333_333_334);
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_ns(5);
        let b = SimDuration::from_ns(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_ns(4));
        let t = SimTime::from_ns(1);
        assert_eq!(t.saturating_since(SimTime::from_ns(2)), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_clamps_at_horizon() {
        let huge = SimDuration::from_ps(u64::MAX - 10);
        // Duration doubling near the horizon clamps instead of wrapping.
        assert_eq!(huge.saturating_add(huge).as_ps(), u64::MAX);
        assert_eq!(
            SimDuration::from_ps(3).saturating_add(SimDuration::from_ps(4)),
            SimDuration::from_ps(7)
        );
        // A timeout armed off a late `now` clamps to SimTime::MAX.
        let late = SimTime::from_ps(u64::MAX - 5);
        assert_eq!(late.saturating_add(huge), SimTime::MAX);
        assert_eq!(
            SimTime::from_ps(5).saturating_add(SimDuration::from_ps(6)),
            SimTime::from_ps(11)
        );
    }

    #[test]
    fn from_ns_f64_rounds() {
        // 0.27 us/KB from the paper's OS model.
        let d = SimDuration::from_ns_f64(270.0);
        assert_eq!(d.as_ps(), 270_000);
        assert_eq!(SimDuration::from_ns_f64(0.0004).as_ps(), 0);
        assert_eq!(SimDuration::from_ns_f64(0.0006).as_ps(), 1);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_ps(12).to_string(), "12ps");
        assert_eq!(SimDuration::from_ns(512).to_string(), "512.000ns");
        assert_eq!(SimDuration::from_us(30).to_string(), "30.000us");
        assert_eq!(SimDuration::from_ms(2).to_string(), "2.000ms");
        assert_eq!(SimTime::ZERO.to_string(), "0ps");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_ns(1).max(SimDuration::from_ns(2)),
            SimDuration::from_ns(2)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }
}
