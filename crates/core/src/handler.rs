//! The active-switch programming model: handlers and their kernel API.
//!
//! §2: an incoming active message invokes a *handler* on a switch CPU,
//! message-driven-processor style. Handlers access the message payload
//! through memory-mapped addresses (translated by the ATB into data
//! buffers, stalling on per-line valid bits), keep small tables in
//! switch-local memory (through the 1 KB D-cache), compose outgoing
//! messages in data buffers, and ask the small run-time kernel to send
//! messages, initiate I/O requests, and de-allocate buffers.
//!
//! A [`Handler`] implementation is *real code over real bytes*: the MD5
//! handler computes real digests, the Grep handler runs a real DFA.
//! Timing is charged through the [`HandlerCtx`] methods as the data is
//! processed.

use asan_cpu::Cpu;
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::SimTime;

use crate::atb::Atb;
use crate::buffer::{BufId, LINE_BYTES};
use crate::dba::BufferAdmin;

/// Width of one switch-CPU access to a data buffer (a double-word load
/// through its dedicated buffer port).
pub const BUFFER_ACCESS_BYTES: usize = 8;

/// Header information of the message that invoked the handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgInfo {
    /// Sender of the message.
    pub src: NodeId,
    /// Handler field from the 64-bit active header.
    pub handler: HandlerId,
    /// Address the payload is mapped at (32-bit header field).
    pub addr: u32,
    /// Payload length.
    pub len: usize,
    /// Flow sequence number.
    pub seq: u32,
}

/// An outgoing message composed by a handler, to be injected by the
/// switch's send unit. Its data buffer is released as the injection
/// port drains (modeled inside [`HandlerCtx`]); the cluster layer only
/// transmits the message through the fabric.
#[derive(Debug, Clone)]
pub struct OutMsg {
    /// Destination node.
    pub dst: NodeId,
    /// Handler to invoke at the destination (for switch→switch or
    /// host-notification actives), or `None` for plain data.
    pub handler: Option<HandlerId>,
    /// Address field for the destination's mapping.
    pub addr: u32,
    /// Real payload bytes (≤ one buffer; the kernel splits larger sends).
    pub data: Vec<u8>,
    /// When the send unit may inject it.
    pub ready: SimTime,
    /// The data buffer that held it until the send unit drained it.
    pub buf: BufId,
}

/// A disk request initiated *from the switch* (used by Tar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchIoReq {
    /// The TCA to read from.
    pub tca: NodeId,
    /// File index on that TCA.
    pub file: usize,
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Node the data should be delivered to.
    pub deliver_to: NodeId,
    /// Handler invoked per delivered packet (when `deliver_to` is a
    /// switch), or `None` for raw delivery.
    pub deliver_handler: Option<HandlerId>,
    /// Base address for the delivered data's mapping.
    pub deliver_addr: u32,
    /// When the request left the handler.
    pub ready: SimTime,
}

/// Kernel services available to a handler during one invocation.
///
/// All methods charge switch-CPU time as they go; `now()` is the
/// handler's current position on the switch CPU's clock.
#[derive(Debug)]
pub struct HandlerCtx<'a> {
    pub(crate) cpu: &'a mut Cpu,
    pub(crate) dba: &'a mut BufferAdmin,
    pub(crate) atb: &'a mut Atb,
    pub(crate) msg: MsgInfo,
    pub(crate) input: BufId,
    pub(crate) outbox: &'a mut Vec<OutMsg>,
    pub(crate) io_reqs: &'a mut Vec<SwitchIoReq>,
    pub(crate) switch_node: NodeId,
    pub(crate) keep_input: bool,
    pub(crate) input_freed: bool,
    /// Cost of posting one message to the send unit, in cycles.
    pub(crate) send_unit_cycles: u64,
    /// The send unit's injection port: busy-until time (shared across
    /// invocations; models crossbar injection serialization).
    pub(crate) send_unit_free: &'a mut SimTime,
    /// Injection bandwidth toward the crossbar (bytes/second).
    pub(crate) injection_bps: u64,
    /// Whether the hardware ATB translates addresses (see
    /// [`crate::active::ActiveSwitchConfig::atb_enabled`]).
    pub(crate) atb_enabled: bool,
}

impl HandlerCtx<'_> {
    /// Schedules the send unit to drain `wire_bytes` from `buf` no
    /// earlier than `ready`, releasing the buffer when the crossbar has
    /// absorbed it. Returns the drain time.
    fn schedule_drain(&mut self, buf: BufId, wire_bytes: u64, ready: SimTime) -> SimTime {
        let start = ready.max(*self.send_unit_free);
        let drain = start + asan_sim::SimDuration::transfer(wire_bytes, self.injection_bps);
        *self.send_unit_free = drain;
        self.dba.release(buf, drain);
        drain
    }

    /// The invoking message's header information.
    pub fn msg(&self) -> MsgInfo {
        self.msg
    }

    /// The switch this handler runs on.
    pub fn switch_node(&self) -> NodeId {
        self.switch_node
    }

    /// Current time on this switch CPU.
    pub fn now(&self) -> SimTime {
        self.cpu.now()
    }

    /// Charges `instrs` instructions of computation.
    pub fn compute(&mut self, instrs: u64) {
        self.cpu.compute(instrs);
    }

    /// Reads `len` mapped bytes starting at `addr`, charging one
    /// buffer-port access per double-word and stalling on valid bits.
    /// Returns the real bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is not currently mapped (a correctness bug in
    /// the handler or its host-side partner).
    pub fn read_mapped(&mut self, addr: u32, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            if !self.atb_enabled {
                // Software (bufId, offset) arithmetic per window: bounds
                // check, table walk, pointer fix-up (§3 motivates the
                // ATB by this inconvenience).
                self.cpu.compute(14);
            }
            let (buf, off) = self
                .atb
                .translate(a)
                .unwrap_or_else(|| panic!("address {a:#x} not mapped"));
            let window = (crate::buffer::BUFFER_BYTES - off).min(remaining);
            // Stall on each line's valid bit, then one access per dword.
            let mut o = off;
            let end = off + window;
            while o < end {
                let line_end = ((o / LINE_BYTES) + 1) * LINE_BYTES;
                let chunk = line_end.min(end) - o;
                if let Some(valid) = self.dba.buffer(buf).valid_at(o) {
                    self.cpu.stall_until(valid);
                }
                let accesses = chunk.div_ceil(BUFFER_ACCESS_BYTES) as u64;
                self.cpu.compute(accesses);
                out.extend_from_slice(self.dba.buffer(buf).bytes(o, chunk));
                o += chunk;
            }
            a += window as u32;
            remaining -= window;
        }
        out
    }

    /// The full payload of the invoking message (reads it through the
    /// mapped buffer, charging accordingly).
    pub fn payload(&mut self) -> Vec<u8> {
        self.read_mapped(self.msg.addr, self.msg.len)
    }

    /// Streams over `len` mapped bytes at `addr` charging
    /// `instr_per_dword` extra instructions per 8-byte access, without
    /// materializing the data (for pure filtering cost accounting when
    /// the caller already has the bytes via [`payload`]).
    ///
    /// [`payload`]: HandlerCtx::payload
    pub fn charge_stream(&mut self, len: usize, instr_per_dword: u64) {
        let dwords = len.div_ceil(BUFFER_ACCESS_BYTES) as u64;
        self.cpu.compute(dwords * instr_per_dword);
    }

    /// Loads from switch-local memory (tables like HashJoin's
    /// bit-vector) through the 1 KB D-cache.
    pub fn mem_load(&mut self, addr: u64) {
        self.cpu.load(addr);
    }

    /// Stores to switch-local memory through the D-cache.
    pub fn mem_store(&mut self, addr: u64) {
        self.cpu.store(addr);
    }

    /// Keeps the input buffer allocated after this invocation (the
    /// handler will free it explicitly later). Rarely needed — the
    /// kernel normally frees it on return, matching the streaming model.
    pub fn keep_input(&mut self) {
        self.keep_input = true;
    }

    /// Allocates a data buffer for handler-private use (e.g. a reduction
    /// accumulator); stalls until one is free.
    pub fn alloc_buffer(&mut self) -> BufId {
        let (id, granted) = self.dba.alloc(self.cpu.now());
        self.cpu.stall_until(granted);
        self.cpu.compute(2); // kernel bookkeeping
        id
    }

    /// Releases a handler-held buffer.
    pub fn free_buffer(&mut self, id: BufId) {
        self.cpu.compute(2);
        self.dba.release(id, self.cpu.now());
    }

    /// Reads from a handler-held buffer (1 port access per dword; the
    /// data is locally produced, so no valid-bit stalls).
    pub fn buffer_read(&mut self, id: BufId, off: usize, len: usize) -> Vec<u8> {
        let accesses = len.div_ceil(BUFFER_ACCESS_BYTES) as u64;
        self.cpu.compute(accesses);
        self.dba.buffer(id).bytes(off, len).to_vec()
    }

    /// Writes into a handler-held buffer.
    pub fn buffer_write(&mut self, id: BufId, off: usize, data: &[u8]) {
        let accesses = data.len().div_ceil(BUFFER_ACCESS_BYTES) as u64;
        self.cpu.compute(accesses);
        let now = self.cpu.now();
        self.dba.buffer_mut(id).write(off, data, now);
    }

    /// Composes and posts an outgoing message of `data` to `dst`.
    ///
    /// The kernel allocates a data buffer per MTU-sized chunk, copies
    /// the bytes through the buffer port, and posts each chunk to the
    /// send unit; the chunk's buffer is released when the crossbar has
    /// drained it (the cluster layer reports that time).
    pub fn send(&mut self, dst: NodeId, handler: Option<HandlerId>, addr: u32, data: &[u8]) {
        if data.is_empty() {
            let buf = self.alloc_buffer();
            self.cpu.compute(self.send_unit_cycles);
            let ready = self.cpu.now();
            self.schedule_drain(buf, 16, ready);
            self.outbox.push(OutMsg {
                dst,
                handler,
                addr,
                data: Vec::new(),
                ready,
                buf,
            });
            return;
        }
        let mut offset = 0usize;
        while offset < data.len() {
            let chunk = (data.len() - offset).min(crate::buffer::BUFFER_BYTES);
            let buf = self.alloc_buffer();
            let accesses = chunk.div_ceil(BUFFER_ACCESS_BYTES) as u64;
            self.cpu.compute(accesses);
            let now = self.cpu.now();
            self.dba
                .buffer_mut(buf)
                .write(0, &data[offset..offset + chunk], now);
            self.cpu.compute(self.send_unit_cycles);
            let ready = self.cpu.now();
            self.schedule_drain(buf, (chunk + 16) as u64, ready);
            self.outbox.push(OutMsg {
                dst,
                handler,
                addr: addr.wrapping_add(offset as u32),
                data: data[offset..offset + chunk].to_vec(),
                ready,
                buf,
            });
            offset += chunk;
        }
    }

    /// Posts a *held* buffer's current contents to the send unit without
    /// re-copying (the buffer was filled via
    /// [`buffer_write`](HandlerCtx::buffer_write)). The buffer is
    /// released when the crossbar drains it; the handler must allocate a
    /// fresh one before reusing the slot.
    pub fn send_buffer(&mut self, buf: BufId, dst: NodeId, handler: Option<HandlerId>, addr: u32) {
        self.cpu.compute(self.send_unit_cycles);
        let data = {
            let b = self.dba.buffer(buf);
            b.bytes(0, b.len()).to_vec()
        };
        let ready = self.cpu.now();
        let wire = (data.len() + 16) as u64; // payload + wire header
        self.schedule_drain(buf, wire, ready);
        self.outbox.push(OutMsg {
            dst,
            handler,
            addr,
            data,
            ready,
            buf,
        });
    }

    /// Initiates a disk read from the switch (Tar's handler): the
    /// embedded kernel posts a request to `tca` asking it to deliver
    /// `[offset, offset+len)` of `file` to `deliver_to`.
    #[allow(clippy::too_many_arguments)]
    pub fn request_disk_read(
        &mut self,
        tca: NodeId,
        file: usize,
        offset: u64,
        len: u64,
        deliver_to: NodeId,
        deliver_handler: Option<HandlerId>,
        deliver_addr: u32,
    ) {
        // Embedded-kernel request cost (§2.1: "modest kernel support").
        self.cpu.compute(800);
        self.io_reqs.push(SwitchIoReq {
            tca,
            file,
            offset,
            len,
            deliver_to,
            deliver_handler,
            deliver_addr,
            ready: self.cpu.now(),
        });
    }

    /// The paper's `Deallocate_Buffer`: releases all buffers mapped
    /// entirely below `end`, through the ATB → DBA path.
    pub fn dealloc_below(&mut self, end: u32) {
        self.cpu.compute(2);
        let now = self.cpu.now();
        for buf in self.atb.deallocate_below(end) {
            if buf == self.input {
                self.input_freed = true;
            }
            self.dba.release(buf, now);
        }
    }
}

/// An active-switch message handler.
///
/// Implementations hold their persistent per-flow state (bit-vectors,
/// DFA state, MD5 chains…) as ordinary Rust fields; each arriving packet
/// of the flow produces one `on_message` invocation, in arrival order.
pub trait Handler {
    /// Processes one arriving active message.
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>);

    /// Pins invocations for `msg` to a specific switch CPU (the MD5
    /// multi-processor experiments use `seq % num_cpus`); `None` lets
    /// the dispatch unit pick the earliest-free CPU.
    fn cpu_affinity(&self, _msg: &MsgInfo) -> Option<usize> {
        None
    }

    /// Downcasting hook so benchmarks can read back state accumulated
    /// in the handler after a run (`Some(self)` in implementations that
    /// support it).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Writes the handler's persistent per-flow state into a snapshot.
    /// The default writes nothing, which is correct only for stateless
    /// handlers — any handler whose fields evolve across invocations
    /// must override both this and
    /// [`restore_state`](Handler::restore_state) or a restored run will
    /// diverge from the unbroken one.
    fn snapshot_state(&self, _w: &mut SnapWriter) {}

    /// Overwrites the handler's persistent state from a snapshot
    /// written by [`snapshot_state`](Handler::snapshot_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the snapshot bytes cannot be
    /// decoded into this handler's state.
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}
