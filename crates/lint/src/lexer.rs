//! A minimal, dependency-free Rust lexer.
//!
//! The container this workspace builds in has no crates.io access, so
//! `asan-lint` cannot use `syn`. For the invariants we enforce a full
//! AST is unnecessary: every rule works on a token stream with line
//! numbers, provided the lexer never mistakes a string, comment, char
//! literal, or lifetime for code. That is exactly what this module
//! guarantees — comments and literals are consumed as units (and
//! comments are additionally scanned for `asan-lint: allow(...)`
//! escape-hatch directives), so the rule passes only ever see real
//! code tokens.
//!
//! Positions are computed from a precomputed table of line-start
//! offsets rather than threaded through every consumption loop: each
//! token records the character offset it starts at, and `(line, col)`
//! are derived from that offset once. Multi-line constructs (block
//! comments, escaped-newline strings, raw strings) therefore cannot
//! desynchronize the line counter by construction.

/// What a token is; rules mostly care about [`Kind::Ident`] and
/// [`Kind::Punct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`HashMap`, `as`, `match`, …).
    Ident,
    /// Numeric literal (value not interpreted).
    Num,
    /// Operator / delimiter. Multi-character operators the rules need
    /// (`::`, `=>`, `->`, `..=`, `..`, `==`, `!=`, `<=`, `>=`, `&&`,
    /// `||`) are joined into one token.
    Punct,
    /// String / byte-string / char literal (contents dropped).
    Lit,
    /// Lifetime (`'a`); kept so token adjacency survives, ignored by
    /// every rule.
    Life,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: Kind,
    /// Source text (empty for [`Kind::Lit`]).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// 1-based source column (in characters) the token starts at.
    pub col: u32,
}

/// One `// asan-lint: allow(rule-a, rule-b)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment starts on. The directive suppresses
    /// matching diagnostics on its own line and the line below, so it
    /// can trail the offending code or sit directly above it.
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Escape-hatch directives found in comments.
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// Whether `rule` is allowed at `line` by a directive on the same
    /// line or the line above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            (a.line == line || a.line + 1 == line)
                && a.rules.iter().any(|r| r == rule || r == "all")
        })
    }
}

const JOINED: [&str; 10] = ["..=", "::", "=>", "->", "..", "==", "!=", "<=", ">=", "&&"];

/// Maps character offsets to 1-based `(line, col)` positions.
struct LineMap {
    /// Character offset of the first character of each line.
    starts: Vec<usize>,
}

impl LineMap {
    fn new(b: &[char]) -> Self {
        let mut starts = vec![0usize];
        for (i, c) in b.iter().enumerate() {
            if *c == '\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    fn pos(&self, offset: usize) -> (u32, u32) {
        // partition_point returns the count of line starts <= offset;
        // the last of those is the token's line.
        let line = self.starts.partition_point(|&s| s <= offset);
        let col = offset - self.starts[line - 1] + 1;
        (
            u32::try_from(line).expect("line fits u32"),
            u32::try_from(col).expect("col fits u32"),
        )
    }
}

/// Lexes `src`, separating code tokens from comments and literals.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let map = LineMap::new(&b);
    let mut out = Lexed::default();
    let mut i = 0usize;
    let push = |out: &mut Lexed, kind: Kind, text: String, start: usize| {
        let (line, col) = map.pos(start);
        out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    };
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                scan_directive(&b[start..i], map.pos(start).0, &mut out.allows);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Rust block comments nest; an unterminated comment
                // swallows the rest of the file, like rustc's lexer.
                let start = i;
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                scan_directive(&b[start..i], map.pos(start).0, &mut out.allows);
            }
            '"' => {
                let start = i;
                i = consume_string(&b, i + 1);
                push(&mut out, Kind::Lit, String::new(), start);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let start = i;
                let mut j = i + 1;
                if j < b.len() && (b[j].is_alphabetic() || b[j] == '_') && b[j] != '\\' {
                    let mut k = j;
                    while k < b.len() && (b[k].is_alphanumeric() || b[k] == '_') {
                        k += 1;
                    }
                    if b.get(k) != Some(&'\'') {
                        push(&mut out, Kind::Life, String::new(), start);
                        i = k;
                        continue;
                    }
                }
                // Char literal: consume up to the closing quote.
                while j < b.len() {
                    match b[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
                push(&mut out, Kind::Lit, String::new(), start);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if matches!(ident.as_str(), "r" | "b" | "br") {
                    let mut hashes = 0usize;
                    let mut j = i;
                    if ident != "b" {
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                    }
                    if b.get(j) == Some(&'"') {
                        i = if ident == "b" && hashes == 0 {
                            consume_string(&b, j + 1)
                        } else {
                            consume_raw_string(&b, j + 1, hashes)
                        };
                        push(&mut out, Kind::Lit, String::new(), start);
                        continue;
                    }
                }
                push(&mut out, Kind::Ident, ident, start);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() {
                    let d = b[i];
                    let take = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.'
                            && b.get(i + 1).is_some_and(char::is_ascii_digit)
                            && b.get(i + 1) != Some(&'.'))
                        || ((d == '+' || d == '-')
                            && matches!(b.get(i.wrapping_sub(1)), Some('e' | 'E'))
                            && b.get(i + 1).is_some_and(char::is_ascii_digit));
                    if !take {
                        break;
                    }
                    i += 1;
                }
                push(&mut out, Kind::Num, b[start..i].iter().collect(), start);
            }
            _ => {
                let start = i;
                let rest: String = b[i..(i + 3).min(b.len())].iter().collect();
                let op = JOINED
                    .iter()
                    .find(|j| rest.starts_with(**j))
                    .map_or_else(|| c.to_string(), |j| (*j).to_string());
                i += op.chars().count();
                push(&mut out, Kind::Punct, op, start);
            }
        }
    }
    out
}

/// Consumes a normal (escaped) string body starting after the opening
/// quote; returns the index just past the closing quote.
fn consume_string(b: &[char], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string body (no escapes) terminated by `"` plus
/// `hashes` `#` characters.
fn consume_raw_string(b: &[char], mut i: usize, hashes: usize) -> usize {
    while i < b.len() {
        if b[i] == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Extracts an `asan-lint: allow(rule, …)` directive from a comment.
/// Doc comments are exempt: prose *documenting* the escape hatch
/// (`/// carries \`// asan-lint: allow(x)\`…`) must not register a
/// suppression — and since the unused-allow audit, a phantom directive
/// would itself be a finding.
fn scan_directive(comment: &[char], line: u32, allows: &mut Vec<Allow>) {
    let text: String = comment.iter().collect();
    let is_doc = text.starts_with("//!")
        || text.starts_with("/*!")
        || (text.starts_with("///") && !text.starts_with("////"))
        || (text.starts_with("/**") && !text.starts_with("/***"));
    if is_doc {
        return;
    }
    let Some(pos) = text.find("asan-lint:") else {
        return;
    };
    let rest = text[pos + "asan-lint:".len()..].trim_start();
    let Some(body) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split(')').next())
    else {
        return;
    };
    let rules: Vec<String> = body
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if !rules.is_empty() {
        allows.push(Allow { line, rules });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap::new()";
            let r = r#"HashMap"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime names never show up as idents.
        assert!(!ids.contains(&"a".to_string()));
    }

    #[test]
    fn allow_directive_parses() {
        let src = "let m = HashMap::new(); // asan-lint: allow(no-unordered-iteration)\n";
        let l = lex(src);
        assert!(l.is_allowed("no-unordered-iteration", 1));
        assert!(l.is_allowed("no-unordered-iteration", 2));
        assert!(!l.is_allowed("no-wall-clock", 1));
        assert!(!l.is_allowed("no-unordered-iteration", 3));
    }

    #[test]
    fn doc_comments_do_not_register_directives() {
        let src = "//! carries `// asan-lint: allow(no-wall-clock)` on its line\n\
                   /// same for `asan-lint: allow(all)` in item docs\n\
                   fn f() {}\n";
        assert!(lex(src).allows.is_empty());
    }

    #[test]
    fn joined_puncts() {
        let toks: Vec<String> = lex("a => b :: c .. d ..= e")
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(toks, ["=>", "::", "..", "..="]);
    }

    #[test]
    fn escaped_newline_in_string_counts_lines() {
        let src = "let s = \"a \\\nb\";\nlet t = 1;\n";
        let l = lex(src);
        let t = l.tokens.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 1;\n";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn columns_are_one_based_characters() {
        let src = "let x = 1;\n  let yy = x;\n";
        let l = lex(src);
        let x = l.tokens.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (1, 5));
        let yy = l.tokens.iter().find(|t| t.text == "yy").unwrap();
        assert_eq!((yy.line, yy.col), (2, 7));
    }

    #[test]
    fn multi_hash_raw_strings_hide_code() {
        let src = "let a = r##\"HashMap \"# still\"##; let real = HashSet::new();\n";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn byte_and_byte_raw_strings_hide_code() {
        let src = "let a = b\"HashMap\"; let b2 = br#\"HashSet\"#; let real = BTreeMap::new();\n";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"HashSet".to_string()));
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn nested_block_comment_at_eof_swallows_rest() {
        let src = "let a = 1;\n/* outer /* inner */ HashMap";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"a".to_string()));
    }

    #[test]
    fn lifetime_in_generic_args_does_not_eat_following_code() {
        let src = "fn f(x: Ref<'a, u8>) -> u8 { let c = 'q'; HashMap::o() }";
        let ids = idents(src);
        assert!(ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"q".to_string()));
    }
}
