//! On-chip data buffers with cache-line-granularity valid bits.
//!
//! §3: "Each data buffer is an independently managed chunk of memory
//! equipped with cache-line based valid bits to allow more parallelism
//! and pipelined data transfers. When a line of data is ready, its
//! corresponding valid bit is set. Accessing an invalid line in a data
//! buffer will stall the switch CPU until that line becomes valid."
//!
//! A buffer holds up to one MTU (512 B) in 32 B lines (matching the
//! switch D-cache line size), so 16 valid bits per buffer. For incoming
//! messages the fill schedule is derived from the link serialization
//! times; the switch CPU can therefore begin processing the first lines
//! while the tail of the packet is still on the wire — the overlap the
//! paper credits for much of the active switch's efficiency.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::SimTime;

/// Bytes per data buffer (one MTU).
pub const BUFFER_BYTES: usize = 512;

/// Bytes per valid-bit line.
pub const LINE_BYTES: usize = 32;

/// Lines per buffer.
pub const LINES: usize = BUFFER_BYTES / LINE_BYTES;

/// Index of a data buffer within the switch's buffer file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u8);

/// One on-chip data buffer: real bytes plus per-line valid times.
///
/// # Example
///
/// ```
/// use asan_core::buffer::DataBuffer;
/// use asan_sim::SimTime;
///
/// let mut b = DataBuffer::new();
/// // A 64-byte payload whose lines become valid at 100 ns and 200 ns.
/// b.fill(&[7u8; 64], &[SimTime::from_ns(100), SimTime::from_ns(200)]);
/// assert_eq!(b.valid_at(0), Some(SimTime::from_ns(100)));
/// assert_eq!(b.valid_at(63), Some(SimTime::from_ns(200)));
/// assert_eq!(b.byte(5), 7);
/// ```
#[derive(Debug, Clone)]
pub struct DataBuffer {
    data: [u8; BUFFER_BYTES],
    len: usize,
    /// Valid time per line; `None` = never filled.
    valid: [Option<SimTime>; LINES],
}

impl DataBuffer {
    /// Creates an empty, all-invalid buffer.
    pub fn new() -> Self {
        DataBuffer {
            data: [0; BUFFER_BYTES],
            len: 0,
            valid: [None; LINES],
        }
    }

    /// Number of payload bytes currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no payload.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fills the buffer with `payload`, marking each 32 B line valid at
    /// the corresponding entry of `line_valid_times` (the time the last
    /// byte of that line arrived).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`BUFFER_BYTES`] or the time slice
    /// does not cover every line of the payload.
    pub fn fill(&mut self, payload: &[u8], line_valid_times: &[SimTime]) {
        assert!(payload.len() <= BUFFER_BYTES, "payload exceeds buffer");
        let lines = payload.len().div_ceil(LINE_BYTES);
        assert_eq!(
            line_valid_times.len(),
            lines,
            "need one valid time per {LINE_BYTES}-byte line"
        );
        self.data[..payload.len()].copy_from_slice(payload);
        self.len = payload.len();
        self.valid = [None; LINES];
        for (i, &t) in line_valid_times.iter().enumerate() {
            self.valid[i] = Some(t);
        }
    }

    /// Fills the buffer with locally produced data (e.g. an outgoing
    /// message composed by the switch CPU), valid immediately at `now`.
    pub fn fill_local(&mut self, payload: &[u8], now: SimTime) {
        let lines = payload.len().div_ceil(LINE_BYTES);
        let times = vec![now; lines];
        self.fill(payload, &times);
    }

    /// The time at which the line containing byte `offset` becomes
    /// valid, or `None` if that line was never filled.
    pub fn valid_at(&self, offset: usize) -> Option<SimTime> {
        if offset >= self.len {
            return None;
        }
        self.valid[offset / LINE_BYTES]
    }

    /// Reads byte `offset` (data only — the caller models timing via
    /// [`valid_at`](DataBuffer::valid_at)).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is beyond the payload.
    pub fn byte(&self, offset: usize) -> u8 {
        assert!(
            offset < self.len,
            "read past payload ({offset} >= {})",
            self.len
        );
        self.data[offset]
    }

    /// A slice of the payload.
    ///
    /// # Panics
    ///
    /// Panics if the range is beyond the payload.
    pub fn bytes(&self, offset: usize, len: usize) -> &[u8] {
        assert!(offset + len <= self.len, "slice past payload");
        &self.data[offset..offset + len]
    }

    /// Writes `data` at `offset`, marking the affected lines valid at
    /// `now` and extending the payload if needed.
    ///
    /// # Panics
    ///
    /// Panics if the write exceeds [`BUFFER_BYTES`].
    pub fn write(&mut self, offset: usize, data: &[u8], now: SimTime) {
        assert!(offset + data.len() <= BUFFER_BYTES, "write past buffer");
        self.data[offset..offset + data.len()].copy_from_slice(data);
        self.len = self.len.max(offset + data.len());
        let first = offset / LINE_BYTES;
        let last = (offset + data.len()).div_ceil(LINE_BYTES);
        for l in first..last {
            // Keep the earliest validity if data arrived before.
            if self.valid[l].is_none() {
                self.valid[l] = Some(now);
            }
        }
    }

    /// Clears content and valid bits (buffer returned to the free pool).
    pub fn reset(&mut self) {
        self.len = 0;
        self.valid = [None; LINES];
    }

    /// Writes the full byte array, payload length, and per-line valid
    /// times. The whole array is written (not just `len` bytes) because
    /// a later extending [`write`](DataBuffer::write) can expose bytes
    /// beyond the current payload.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.bytes(&self.data);
        w.usize(self.len);
        for v in &self.valid {
            w.opt_time(*v);
        }
    }

    /// Overwrites this buffer from a snapshot.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let data = r.bytes()?;
        if data.len() != BUFFER_BYTES {
            return Err(SnapError::Malformed("data buffer size mismatch"));
        }
        self.data.copy_from_slice(&data);
        self.len = r.usize()?;
        if self.len > BUFFER_BYTES {
            return Err(SnapError::Malformed("data buffer payload too long"));
        }
        for v in &mut self.valid {
            *v = r.opt_time()?;
        }
        Ok(())
    }

    /// The latest line-valid time, i.e. when the whole payload is
    /// present. `None` for an empty buffer.
    pub fn all_valid_at(&self) -> Option<SimTime> {
        let lines = self.len.div_ceil(LINE_BYTES);
        if lines == 0 {
            return None;
        }
        (0..lines)
            .map(|l| self.valid[l])
            .try_fold(SimTime::ZERO, |acc, t| t.map(|t| acc.max(t)))
    }
}

impl Default for DataBuffer {
    fn default() -> Self {
        DataBuffer::new()
    }
}

/// Builds the per-line valid schedule for a payload that starts arriving
/// at `first` and finishes at `last` (linear serialization, as on a
/// link): line `i` is valid when its final byte has arrived.
pub fn line_schedule(payload_len: usize, first: SimTime, last: SimTime) -> Vec<SimTime> {
    let lines = payload_len.div_ceil(LINE_BYTES);
    if lines == 0 {
        return Vec::new();
    }
    let span = last.since(first).as_ps();
    (0..lines)
        .map(|i| {
            let end_byte = ((i + 1) * LINE_BYTES).min(payload_len) as u64;
            let frac = span as u128 * end_byte as u128 / payload_len as u128;
            first + asan_sim::SimDuration::from_ps(frac as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_read_back() {
        let mut b = DataBuffer::new();
        let payload: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        let times: Vec<SimTime> = (0..16).map(|i| SimTime::from_ns(i * 10)).collect();
        b.fill(&payload, &times);
        assert_eq!(b.len(), 512);
        assert_eq!(b.byte(0), 0);
        assert_eq!(b.byte(511), 255);
        assert_eq!(b.bytes(100, 4), &[100, 101, 102, 103]);
    }

    #[test]
    fn valid_times_follow_lines() {
        let mut b = DataBuffer::new();
        let times: Vec<SimTime> = (0..16).map(|i| SimTime::from_ns(i * 10)).collect();
        b.fill(&[0u8; 512], &times);
        assert_eq!(b.valid_at(0), Some(SimTime::ZERO));
        assert_eq!(b.valid_at(31), Some(SimTime::ZERO));
        assert_eq!(b.valid_at(32), Some(SimTime::from_ns(10)));
        assert_eq!(b.valid_at(511), Some(SimTime::from_ns(150)));
        assert_eq!(b.all_valid_at(), Some(SimTime::from_ns(150)));
    }

    #[test]
    fn partial_payload() {
        let mut b = DataBuffer::new();
        b.fill(&[1u8; 100], &[SimTime::from_ns(1); 4]);
        assert_eq!(b.len(), 100);
        assert_eq!(b.valid_at(99), Some(SimTime::from_ns(1)));
        assert_eq!(b.valid_at(100), None);
    }

    #[test]
    #[should_panic(expected = "read past payload")]
    fn read_past_payload_panics() {
        let mut b = DataBuffer::new();
        b.fill(&[1u8; 10], &[SimTime::ZERO]);
        b.byte(10);
    }

    #[test]
    fn local_write_marks_valid_immediately() {
        let mut b = DataBuffer::new();
        b.write(0, &[9u8; 64], SimTime::from_ns(5));
        assert_eq!(b.len(), 64);
        assert_eq!(b.valid_at(63), Some(SimTime::from_ns(5)));
        // Extending write.
        b.write(64, &[8u8; 32], SimTime::from_ns(7));
        assert_eq!(b.len(), 96);
        assert_eq!(b.valid_at(64), Some(SimTime::from_ns(7)));
    }

    #[test]
    fn reset_invalidates() {
        let mut b = DataBuffer::new();
        b.fill_local(&[3u8; 512], SimTime::ZERO);
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.valid_at(0), None);
        assert_eq!(b.all_valid_at(), None);
    }

    #[test]
    fn overlapping_writes_keep_earliest_validity() {
        let mut b = DataBuffer::new();
        b.write(0, &[1u8; 32], SimTime::from_ns(10));
        // A later write to the same line must not push validity later.
        b.write(16, &[2u8; 16], SimTime::from_ns(99));
        assert_eq!(b.valid_at(0), Some(SimTime::from_ns(10)));
        assert_eq!(b.byte(20), 2);
        assert_eq!(b.byte(10), 1);
    }

    #[test]
    #[should_panic(expected = "write past buffer")]
    fn write_past_buffer_panics() {
        let mut b = DataBuffer::new();
        b.write(500, &[0u8; 20], SimTime::ZERO);
    }

    #[test]
    fn line_schedule_is_monotone_and_ends_at_last() {
        let s = line_schedule(512, SimTime::from_ns(100), SimTime::from_ns(612));
        assert_eq!(s.len(), 16);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*s.last().unwrap(), SimTime::from_ns(612));
        // First line valid once its 32 bytes arrived: 100 + 32 ns.
        assert_eq!(s[0], SimTime::from_ns(132));
    }

    #[test]
    fn line_schedule_short_payload() {
        let s = line_schedule(40, SimTime::ZERO, SimTime::from_ns(40));
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], SimTime::from_ns(32));
        assert_eq!(s[1], SimTime::from_ns(40));
        assert!(line_schedule(0, SimTime::ZERO, SimTime::ZERO).is_empty());
    }
}
