//! The active switch: dispatch unit, jump table, switch CPUs, buffers.
//!
//! §3 / Figure 2: the active hardware added to a conventional
//! central-output-queue switch is a Dispatch unit (header → handler PC
//! via the jump table, buffer → ATB mapping), 16 data buffers with a
//! buffer administrator, a Send unit, and 1–4 embedded 500 MHz MIPS-like
//! switch CPUs with private 4 KB I / 1 KB D caches. Because the data and
//! control paths are separate, a handler starts as soon as the *header*
//! arrives, overlapping execution with the payload's arrival into the
//! data buffer (per-line valid bits).
//!
//! Non-active traffic never touches any of this — it flows through the
//! crossbar as in a conventional switch (modeled by
//! [`asan_net::topo::Fabric`]), which is the paper's first design goal.

use asan_cpu::{Cpu, CpuConfig};
use asan_net::{HandlerId, Packet};
use asan_net::{NodeId, MTU};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::{Counter, TimeBreakdown};
use asan_sim::{SimDuration, SimTime};

use crate::atb::Atb;
use crate::buffer::line_schedule;
use crate::dba::BufferAdmin;
use crate::handler::{Handler, HandlerCtx, MsgInfo, OutMsg, SwitchIoReq};

/// Static configuration of the active parts of a switch.
#[derive(Debug, Clone)]
pub struct ActiveSwitchConfig {
    /// Number of embedded switch CPUs (1–4 in the paper).
    pub num_cpus: usize,
    /// Per-CPU core configuration.
    pub cpu: CpuConfig,
    /// Dispatch unit latency in switch cycles (header decode, jump table
    /// lookup, ATB map, scheduling).
    pub dispatch_cycles: u64,
    /// Data buffers in the buffer file.
    pub num_buffers: usize,
    /// Send unit posting cost in switch-CPU cycles.
    pub send_unit_cycles: u64,
    /// Injection bandwidth from the send unit into the crossbar
    /// (matches the 1 GB/s port speed of §4).
    pub injection_bytes_per_sec: u64,
    /// Per-line valid bits (§3). When disabled, a handler's loads wait
    /// for the *whole* payload (store-and-forward into the buffer) —
    /// the ablation of the paper's overlap argument.
    pub valid_bit_overlap: bool,
    /// The ATB (§3). When disabled, handlers translate addresses to
    /// (buffer, offset) pairs in software, paying extra instructions on
    /// every buffer window crossing.
    pub atb_enabled: bool,
}

impl ActiveSwitchConfig {
    /// The paper's configuration with one switch CPU.
    pub fn paper() -> Self {
        ActiveSwitchConfig {
            num_cpus: 1,
            cpu: CpuConfig::switch_cpu(),
            dispatch_cycles: 8,
            num_buffers: crate::dba::NUM_BUFFERS,
            send_unit_cycles: 4,
            injection_bytes_per_sec: 1_000_000_000,
            valid_bit_overlap: true,
            atb_enabled: true,
        }
    }

    /// The multi-processor variant (§5, "Multiple Switch Processors").
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the paper's maximum of 4.
    pub fn with_cpus(n: usize) -> Self {
        assert!((1..=4).contains(&n), "the design supports 1–4 switch CPUs");
        ActiveSwitchConfig {
            num_cpus: n,
            ..ActiveSwitchConfig::paper()
        }
    }
}

/// Statistics of one active switch.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActiveStats {
    /// Handler invocations dispatched.
    pub invocations: Counter,
    /// Active payload bytes consumed.
    pub bytes_in: Counter,
    /// Payload bytes emitted by handlers.
    pub bytes_out: Counter,
    /// Messages emitted by handlers.
    pub msgs_out: Counter,
    /// Switch-initiated I/O requests.
    pub io_reqs: Counter,
}

/// Effects of dispatching one active message: what the cluster layer
/// must inject into the fabric / I/O system, and when the CPU finished.
#[derive(Debug)]
pub struct DispatchResult {
    /// Messages to transmit (their buffers are already scheduled for
    /// release as the send unit drains them).
    pub outbox: Vec<OutMsg>,
    /// Switch-initiated disk requests.
    pub io_reqs: Vec<SwitchIoReq>,
    /// When the input data buffer was granted by the buffer
    /// administrator (buffer-wait span: dispatch request → here).
    pub granted: SimTime,
    /// When the handler began executing on its CPU (after buffer grant
    /// and the dispatch-unit latency).
    pub started: SimTime,
    /// When the handler invocation completed.
    pub done: SimTime,
    /// Which CPU ran it.
    pub cpu: usize,
}

/// One active switch instance, attached to a switch node of the fabric.
#[derive(Debug)]
pub struct ActiveSwitch {
    node: NodeId,
    cfg: ActiveSwitchConfig, // asan-lint: allow(snapshot-completeness)
    cpus: Vec<Cpu>,
    atbs: Vec<Atb>,
    dba: BufferAdmin,
    /// The jump table: handler ID → handler. `Option` so invocations can
    /// temporarily take the box (borrow discipline).
    jump: Vec<Option<Box<dyn Handler>>>,
    /// The send unit's injection port busy-until time.
    send_unit_free: SimTime,
    stats: ActiveStats,
}

impl std::fmt::Debug for dyn Handler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<handler>")
    }
}

impl ActiveSwitch {
    /// Creates an active switch bound to fabric node `node`.
    pub fn new(node: NodeId, cfg: ActiveSwitchConfig) -> Self {
        assert!(cfg.num_cpus >= 1, "need at least one switch CPU");
        let mut jump = Vec::with_capacity(64);
        jump.resize_with(64, || None);
        ActiveSwitch {
            node,
            cpus: (0..cfg.num_cpus)
                .map(|_| Cpu::new(cfg.cpu.clone()))
                .collect(),
            atbs: (0..cfg.num_cpus).map(|_| Atb::new()).collect(),
            dba: BufferAdmin::new(cfg.num_buffers),
            jump,
            send_unit_free: SimTime::ZERO,
            stats: ActiveStats::default(),
            cfg,
        }
    }

    /// The fabric node this switch occupies.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration.
    pub fn config(&self) -> &ActiveSwitchConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ActiveStats {
        &self.stats
    }

    /// Per-CPU busy/stall/idle breakdowns.
    pub fn cpu_breakdowns(&self) -> Vec<TimeBreakdown> {
        self.cpus.iter().map(|c| *c.breakdown()).collect()
    }

    /// The buffer administrator (for inspection).
    pub fn dba(&self) -> &BufferAdmin {
        &self.dba
    }

    /// The per-CPU ATBs (for inspection).
    pub fn atb(&self, cpu: usize) -> &Atb {
        &self.atbs[cpu]
    }

    /// The embedded switch CPUs (for statistics inspection).
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// Latest local time across the switch CPUs.
    pub fn latest_cpu_time(&self) -> SimTime {
        self.cpus
            .iter()
            .map(asan_cpu::Cpu::now)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Installs `handler` in the jump table at `id`, replacing any
    /// previous entry.
    pub fn register(&mut self, id: HandlerId, handler: Box<dyn Handler>) {
        self.jump[id.as_u8() as usize] = Some(handler);
    }

    /// Whether a handler is installed at `id`.
    pub fn has_handler(&self, id: HandlerId) -> bool {
        self.jump[id.as_u8() as usize].is_some()
    }

    /// Removes and returns the handler at `id` (end of run, so apps can
    /// read back results accumulated in handler state).
    pub fn take_handler(&mut self, id: HandlerId) -> Option<Box<dyn Handler>> {
        self.jump[id.as_u8() as usize].take()
    }

    /// Seizes `count` data buffers from the start of the run, releasing
    /// them at `until` — injected DBA exhaustion that forces later
    /// dispatches through the allocation-stall path. Always leaves at
    /// least one buffer free so the pipeline cannot deadlock.
    pub fn seize_buffers(&mut self, count: usize, until: SimTime) {
        for _ in 0..count.min(self.cfg.num_buffers.saturating_sub(1)) {
            let (buf, granted) = self.dba.alloc(SimTime::ZERO);
            self.dba.release(buf, until.max(granted));
        }
    }

    /// Writes the switch's dynamic state: CPUs, ATBs, buffer file,
    /// send-unit occupancy, statistics, and each installed handler's
    /// persistent state (via [`Handler::snapshot_state`]).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("active");
        w.u16(self.node.0);
        w.usize(self.cpus.len());
        for c in &self.cpus {
            c.snapshot(w);
        }
        for a in &self.atbs {
            a.snapshot(w);
        }
        self.dba.snapshot(w);
        for slot in &self.jump {
            match slot {
                Some(h) => {
                    w.bool(true);
                    h.snapshot_state(w);
                }
                None => w.bool(false),
            }
        }
        w.time(self.send_unit_free);
        self.stats.invocations.snapshot(w);
        self.stats.bytes_in.snapshot(w);
        self.stats.bytes_out.snapshot(w);
        self.stats.msgs_out.snapshot(w);
        self.stats.io_reqs.snapshot(w);
    }

    /// Overwrites this switch's dynamic state from a snapshot taken of
    /// a switch with the same node, configuration, and registered
    /// handler set.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is malformed or the
    /// snapshotted switch's shape (node, CPU count, jump-table
    /// occupancy) does not match this one.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("active")?;
        if r.u16()? != self.node.0 {
            return Err(SnapError::Malformed("active switch node mismatch"));
        }
        if r.usize()? != self.cpus.len() {
            return Err(SnapError::Malformed("switch CPU count mismatch"));
        }
        for c in &mut self.cpus {
            c.restore(r)?;
        }
        for a in &mut self.atbs {
            a.restore(r)?;
        }
        self.dba.restore(r)?;
        for slot in &mut self.jump {
            let present = r.bool()?;
            match (present, slot.as_mut()) {
                (true, Some(h)) => h.restore_state(r)?,
                (false, None) => {}
                _ => return Err(SnapError::Malformed("jump table occupancy mismatch")),
            }
        }
        self.send_unit_free = r.time()?;
        self.stats = ActiveStats {
            invocations: Counter::restore(r)?,
            bytes_in: Counter::restore(r)?,
            bytes_out: Counter::restore(r)?,
            msgs_out: Counter::restore(r)?,
            io_reqs: Counter::restore(r)?,
        };
        Ok(())
    }

    /// Dispatches an arriving active message.
    ///
    /// * `header_at` — when the header reached the switch (dispatch can
    ///   begin: control and data paths are separate);
    /// * `payload_start`/`payload_end` — the payload's serialization
    ///   window, which becomes the data buffer's per-line valid times.
    ///
    /// # Panics
    ///
    /// Panics if no handler is registered for the message's handler ID.
    pub fn dispatch(
        &mut self,
        pkt: &Packet,
        header_at: SimTime,
        payload_start: SimTime,
        payload_end: SimTime,
    ) -> DispatchResult {
        let hid = pkt
            .header
            .handler
            .expect("dispatch called on a non-active message");
        assert!(
            self.has_handler(hid),
            "no handler registered for {hid} on {}",
            self.node
        );
        self.stats.invocations.inc();
        self.stats.bytes_in.add(pkt.payload.len() as u64);

        let msg = MsgInfo {
            src: pkt.header.src,
            handler: hid,
            addr: pkt.header.addr,
            len: pkt.payload.len(),
            seq: pkt.header.seq,
        };

        // The Dispatch unit: allocate a data buffer, map it in the ATB,
        // choose a CPU.
        let (buf, granted) = self.dba.alloc(header_at);
        let schedule = if self.cfg.valid_bit_overlap {
            line_schedule(pkt.payload.len(), payload_start, payload_end)
        } else {
            // Store-and-forward: nothing is readable before the last
            // byte arrived.
            vec![payload_end; pkt.payload.len().div_ceil(crate::buffer::LINE_BYTES)]
        };
        self.dba.buffer_mut(buf).fill(&pkt.payload, &schedule);

        let mut handler = self.jump[hid.as_u8() as usize].take().expect("checked");
        let cpu_idx = match handler.cpu_affinity(&msg) {
            Some(a) => a % self.cfg.num_cpus,
            None => {
                // Earliest-free CPU.
                (0..self.cpus.len())
                    .min_by_key(|&i| self.cpus[i].now())
                    .expect("at least one CPU")
            }
        };

        let window_base = msg.addr - (msg.addr % MTU as u32);
        self.atbs[cpu_idx].map(window_base, buf);

        let dispatch_lat = SimDuration::cycles(self.cfg.dispatch_cycles, self.cfg.cpu.hz);
        let start = granted.max(header_at + dispatch_lat);
        let cpu = &mut self.cpus[cpu_idx];
        cpu.idle_until(start);

        let mut outbox = Vec::new();
        let mut io_reqs = Vec::new();
        let keep_input;
        let input_freed;
        {
            let mut ctx = HandlerCtx {
                cpu,
                dba: &mut self.dba,
                atb: &mut self.atbs[cpu_idx],
                msg,
                input: buf,
                outbox: &mut outbox,
                io_reqs: &mut io_reqs,
                switch_node: self.node,
                keep_input: false,
                input_freed: false,
                send_unit_cycles: self.cfg.send_unit_cycles,
                send_unit_free: &mut self.send_unit_free,
                injection_bps: self.cfg.injection_bytes_per_sec,
                atb_enabled: self.cfg.atb_enabled,
            };
            handler.on_message(&mut ctx);
            keep_input = ctx.keep_input;
            input_freed = ctx.input_freed;
        }
        self.jump[hid.as_u8() as usize] = Some(handler);

        let done = self.cpus[cpu_idx].now();
        if !keep_input && !input_freed {
            self.dba.release(buf, done);
            self.atbs[cpu_idx].unmap(window_base);
        }
        for m in &outbox {
            self.stats.bytes_out.add(m.data.len() as u64);
            self.stats.msgs_out.inc();
        }
        self.stats.io_reqs.add(io_reqs.len() as u64);

        DispatchResult {
            outbox,
            io_reqs,
            granted,
            started: start,
            done,
            cpu: cpu_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_net::{packetize, Header};

    /// A handler that counts bytes and echoes half of them to a sink.
    struct Echo {
        seen: u64,
        sink: NodeId,
    }

    impl Handler for Echo {
        fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
            let msg = ctx.msg();
            let data = ctx.payload();
            self.seen += data.len() as u64;
            ctx.compute(data.len() as u64 / 4);
            let half = &data[..data.len() / 2];
            ctx.send(self.sink, None, msg.addr, half);
        }
    }

    fn active_pkt(addr: u32, len: usize, seq: u32) -> Packet {
        let payload = vec![0xAB; len];
        Packet::new(
            Header {
                src: NodeId(1),
                dst: NodeId(0),
                len: u16::try_from(len).expect("payload bounded by MTU"),
                handler: Some(HandlerId::new(3)),
                addr,
                seq,
            },
            payload,
        )
    }

    #[test]
    fn dispatch_runs_handler_and_emits() {
        let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
        sw.register(
            HandlerId::new(3),
            Box::new(Echo {
                seen: 0,
                sink: NodeId(2),
            }),
        );
        let pkt = active_pkt(0, 512, 0);
        let r = sw.dispatch(
            &pkt,
            SimTime::from_ns(100),
            SimTime::from_ns(100),
            SimTime::from_ns(612),
        );
        assert_eq!(r.outbox.len(), 1);
        assert_eq!(r.outbox[0].data.len(), 256);
        assert_eq!(r.outbox[0].dst, NodeId(2));
        // The handler read the whole payload: cannot finish before the
        // last line arrived.
        assert!(r.done >= SimTime::from_ns(612));
        assert_eq!(sw.stats().invocations.get(), 1);
        assert_eq!(sw.stats().bytes_in.get(), 512);
        assert_eq!(sw.stats().bytes_out.get(), 256);
        // The send unit releases the out buffer as it drains.
        assert_eq!(sw.dba().busy_count(r.done + SimDuration::from_us(1)), 0);
    }

    #[test]
    fn valid_bit_overlap_beats_store_and_forward() {
        // With per-line valid bits the handler finishes soon after the
        // last byte arrives; without them it could not even start until
        // then.
        let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
        sw.register(
            HandlerId::new(3),
            Box::new(Echo {
                seen: 0,
                sink: NodeId(2),
            }),
        );
        // Warm the instruction cache with a few invocations (the fetch
        // model walks the whole 2 KB hot-code footprint), then measure.
        for i in 0..4u32 {
            let t = SimTime::from_us(i as u64 * 10);
            sw.dispatch(
                &active_pkt(i * 512, 512, i),
                t,
                t,
                t + SimDuration::from_ns(512),
            );
        }
        let pkt = active_pkt(4 * 512, 512, 4);
        let base = SimTime::from_us(100);
        let payload_end = base + SimDuration::from_ns(512);
        let r = sw.dispatch(&pkt, base, base, payload_end);
        // Processing cost alone (reads + compute + send) at 500 MHz is
        // ~(64 + 128 + 32 + …) cycles ≈ 500 ns; overlapped with the
        // 512 ns arrival it must finish well before arrival + cost.
        let overlap_bound = payload_end + SimDuration::from_ns(400);
        assert!(
            r.done < overlap_bound,
            "no overlap: done={:?} bound={overlap_bound:?}",
            r.done
        );
    }

    #[test]
    fn consecutive_messages_serialize_on_one_cpu() {
        let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
        sw.register(
            HandlerId::new(3),
            Box::new(Echo {
                seen: 0,
                sink: NodeId(2),
            }),
        );
        let a = sw.dispatch(
            &active_pkt(0, 512, 0),
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_ns(512),
        );
        let b = sw.dispatch(
            &active_pkt(512, 512, 1),
            SimTime::from_ns(10),
            SimTime::from_ns(10),
            SimTime::from_ns(522),
        );
        assert!(b.done > a.done);
        assert_eq!(a.cpu, b.cpu);
    }

    #[test]
    fn multiple_cpus_run_in_parallel() {
        struct Pinned;
        impl Handler for Pinned {
            fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
                let _ = ctx.payload();
                ctx.compute(10_000);
            }
            fn cpu_affinity(&self, msg: &MsgInfo) -> Option<usize> {
                Some(msg.seq as usize)
            }
        }
        let mut sw2 = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::with_cpus(2));
        sw2.register(HandlerId::new(1), Box::new(Pinned));
        let mk = |seq: u32| {
            Packet::new(
                Header {
                    src: NodeId(1),
                    dst: NodeId(0),
                    len: 512,
                    handler: Some(HandlerId::new(1)),
                    addr: seq * 512,
                    seq,
                },
                vec![1; 512],
            )
        };
        let a = sw2.dispatch(&mk(0), SimTime::ZERO, SimTime::ZERO, SimTime::from_ns(512));
        let b = sw2.dispatch(&mk(1), SimTime::ZERO, SimTime::ZERO, SimTime::from_ns(512));
        assert_ne!(a.cpu, b.cpu);
        // Both ran concurrently: neither waited for the other.
        let span = SimDuration::from_ns(2); // tolerance
        assert!(b.done.saturating_since(a.done) < SimDuration::cycles(10_000, 500_000_000) + span);
    }

    #[test]
    fn handler_state_persists_across_invocations() {
        let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
        sw.register(
            HandlerId::new(3),
            Box::new(Echo {
                seen: 0,
                sink: NodeId(2),
            }),
        );
        for (i, pkt) in packetize(
            NodeId(1),
            NodeId(0),
            Some(HandlerId::new(3)),
            0,
            &[5u8; 1024],
        )
        .iter()
        .enumerate()
        {
            let t = SimTime::from_us(i as u64 * 2);
            sw.dispatch(pkt, t, t, t + SimDuration::from_ns(512));
        }
        let h = sw.take_handler(HandlerId::new(3)).unwrap();
        // Downcast via a fresh trait-object read: use stats instead.
        drop(h);
        assert_eq!(sw.stats().bytes_in.get(), 1024);
        assert_eq!(sw.stats().bytes_out.get(), 512);
    }

    #[test]
    fn store_and_forward_buffers_delay_handler_completion() {
        // With valid-bit overlap disabled, the handler cannot read any
        // line before the whole payload arrived.
        let mk = |overlap: bool| {
            let mut cfg = ActiveSwitchConfig::paper();
            cfg.valid_bit_overlap = overlap;
            let mut sw = ActiveSwitch::new(NodeId(0), cfg);
            sw.register(
                HandlerId::new(3),
                Box::new(Echo {
                    seen: 0,
                    sink: NodeId(2),
                }),
            );
            // Warm the I-cache, then measure a payload with a LONG
            // arrival window so the overlap effect dominates.
            for i in 0..4u32 {
                let t = SimTime::from_us(i as u64 * 10);
                sw.dispatch(
                    &active_pkt(i * 512, 512, i),
                    t,
                    t,
                    t + SimDuration::from_ns(512),
                );
            }
            let base = SimTime::from_ms(1);
            let r = sw.dispatch(
                &active_pkt(4 * 512, 512, 4),
                base,
                base,
                base + SimDuration::from_us(100),
            );
            r.done
        };
        let with_overlap = mk(true);
        let without = mk(false);
        assert!(without >= with_overlap, "{without} < {with_overlap}");
    }

    #[test]
    fn atb_disabled_charges_software_translation() {
        // The extra software-translation instructions often hide inside
        // the valid-bit stall shadow, so compare retired instructions
        // (the cost the paper's ATB removes) rather than wall time.
        let mk = |atb: bool| {
            let mut cfg = ActiveSwitchConfig::paper();
            cfg.atb_enabled = atb;
            let mut sw = ActiveSwitch::new(NodeId(0), cfg);
            sw.register(
                HandlerId::new(3),
                Box::new(Echo {
                    seen: 0,
                    sink: NodeId(2),
                }),
            );
            for i in 0..4u32 {
                let t = SimTime::from_us(i as u64 * 10);
                sw.dispatch(
                    &active_pkt(i * 512, 512, i),
                    t,
                    t,
                    t + SimDuration::from_ns(512),
                );
            }
            sw.cpus()[0].instructions()
        };
        let with_atb = mk(true);
        let without = mk(false);
        assert!(
            without > with_atb,
            "software translation must retire extra instructions: {without} vs {with_atb}"
        );
    }

    #[test]
    #[should_panic(expected = "no handler registered")]
    fn unregistered_handler_panics() {
        let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
        let pkt = active_pkt(0, 16, 0);
        sw.dispatch(&pkt, SimTime::ZERO, SimTime::ZERO, SimTime::ZERO);
    }
}
