//! Disk timing model.
//!
//! §4: "The disk model includes three timing related parameters: seek
//! time, rotation speed and peak bandwidth. For all the experiments in
//! this paper, we use two disks with a total peak bandwidth of 100 MB/s
//! and we assume a sequential access pattern because most of our
//! applications deal with large files."
//!
//! Each disk keeps a head position; a request contiguous with the
//! previous one streams at the platter rate, anything else pays the
//! average seek plus half a rotation.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;
use asan_sim::{SimDuration, SimTime};

/// Mechanical parameters of one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// Average seek time for a non-sequential access.
    pub seek: SimDuration,
    /// Average rotational delay (half a revolution).
    pub half_rotation: SimDuration,
    /// Peak media transfer rate in bytes/second.
    pub bytes_per_sec: u64,
}

impl DiskConfig {
    /// One of the paper's two disks: 50 MB/s media rate (2 × 50 = the
    /// paper's 100 MB/s aggregate), 5 ms average seek, 10 000 RPM
    /// (3 ms half-rotation) — typical of 2002-era enterprise drives.
    pub fn paper() -> Self {
        DiskConfig {
            seek: SimDuration::from_ms(5),
            half_rotation: SimDuration::from_ns(3_000_000),
            bytes_per_sec: 50_000_000,
        }
    }
}

/// Timing of one disk read/write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskXfer {
    /// When the mechanism started servicing the request.
    pub start: SimTime,
    /// When the first byte was available in the drive buffer.
    pub first_byte: SimTime,
    /// When the last byte was available.
    pub complete: SimTime,
    /// Whether the access was sequential (no seek charged).
    pub sequential: bool,
    /// Media rate for interpolating intermediate byte times.
    pub bytes_per_sec: u64,
    /// Length of the transfer.
    pub len: u64,
}

impl DiskXfer {
    /// Time at which byte `k` (0-based) of the transfer is available.
    pub fn byte_ready(&self, k: u64) -> SimTime {
        debug_assert!(k <= self.len);
        self.first_byte + SimDuration::transfer(k, self.bytes_per_sec)
    }
}

/// Per-disk statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Requests serviced.
    pub requests: Counter,
    /// Requests that required a seek.
    pub seeks: Counter,
    /// Bytes transferred.
    pub bytes: Counter,
}

/// A single disk mechanism.
///
/// The head starts parked at byte 0 — the paper "assumes a
/// sequential access pattern because most of our applications deal
/// with large files", so the first access of a sequential stream from
/// the start of the array pays no positioning cost; any discontiguous
/// access (a different file, a different region) does.
///
/// # Example
///
/// ```
/// use asan_io::disk::{Disk, DiskConfig};
/// use asan_sim::SimTime;
/// let mut d = Disk::new(DiskConfig::paper());
/// let a = d.read(0, 65536, SimTime::ZERO);       // head parked at 0: streams
/// assert!(a.sequential);
/// let b = d.read(1 << 30, 65536, a.complete);    // far away: seek + rotation
/// assert!(!b.sequential);
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    cfg: DiskConfig, // asan-lint: allow(snapshot-completeness)
    head_pos: Option<u64>,
    busy_until: SimTime,
    stats: DiskStats,
    /// When set, the next request pays full positioning even if
    /// sequential (injected latency spike: thermal recalibration or a
    /// sector remap). One-shot; cleared by the next request.
    force_seek: bool,
}

impl Disk {
    /// Creates a disk with the head parked at byte 0.
    pub fn new(cfg: DiskConfig) -> Self {
        assert!(cfg.bytes_per_sec > 0, "zero media rate");
        Disk {
            cfg,
            head_pos: Some(0),
            busy_until: SimTime::ZERO,
            stats: DiskStats::default(),
            force_seek: false,
        }
    }

    /// Forces the next request to pay full mechanical positioning even
    /// if it is sequential — an injected latency spike.
    pub fn force_seek_next(&mut self) {
        self.force_seek = true;
    }

    /// The mechanical parameters.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Services a read of `len` bytes at byte `offset`, requested at
    /// `now`. The mechanism is exclusive: overlapping requests queue.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn read(&mut self, offset: u64, len: u64, now: SimTime) -> DiskXfer {
        assert!(len > 0, "zero-length disk read");
        let start = now.max(self.busy_until);
        let sequential = self.head_pos == Some(offset) && !self.force_seek;
        self.force_seek = false;
        let positioning = if sequential {
            SimDuration::ZERO
        } else {
            self.stats.seeks.inc();
            self.cfg.seek + self.cfg.half_rotation
        };
        let first_byte = start + positioning;
        let complete = first_byte + SimDuration::transfer(len, self.cfg.bytes_per_sec);
        self.head_pos = Some(offset + len);
        self.busy_until = complete;
        self.stats.requests.inc();
        self.stats.bytes.add(len);
        DiskXfer {
            start,
            first_byte,
            complete,
            sequential,
            bytes_per_sec: self.cfg.bytes_per_sec,
            len,
        }
    }

    /// Services a write; identical timing to a read at this fidelity.
    pub fn write(&mut self, offset: u64, len: u64, now: SimTime) -> DiskXfer {
        self.read(offset, len, now)
    }

    /// Writes the head position, mechanism occupancy, pending
    /// seek-spike flag and statistics.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.opt_u64(self.head_pos);
        w.time(self.busy_until);
        w.bool(self.force_seek);
        self.stats.requests.snapshot(w);
        self.stats.seeks.snapshot(w);
        self.stats.bytes.snapshot(w);
    }

    /// Overwrites this disk's dynamic state from a snapshot taken of a
    /// disk with the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.head_pos = r.opt_u64()?;
        self.busy_until = r.time()?;
        self.force_seek = r.bool()?;
        self.stats = DiskStats {
            requests: Counter::restore(r)?,
            seeks: Counter::restore(r)?,
            bytes: Counter::restore(r)?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discontiguous_access_pays_seek_and_rotation() {
        let mut d = Disk::new(DiskConfig::paper());
        // Head parked at 0: reading from the start is free of seeks.
        let x = d.read(0, 1024, SimTime::ZERO);
        assert!(x.sequential);
        assert_eq!(x.first_byte, SimTime::ZERO);
        // Jumping elsewhere pays 5 ms + 3 ms positioning.
        let y = d.read(1 << 20, 1024, x.complete);
        assert!(!y.sequential);
        assert_eq!(y.first_byte.since(y.start).as_ns(), 8_000_000);
        assert_eq!(d.stats().seeks.get(), 1);
    }

    #[test]
    fn sequential_read_streams_at_media_rate() {
        let mut d = Disk::new(DiskConfig::paper());
        let a = d.read(0, 65536, SimTime::ZERO);
        let b = d.read(65536, 65536, a.complete);
        assert!(b.sequential);
        assert_eq!(b.first_byte, b.start);
        // 64 KB at 50 MB/s ≈ 1.31 ms.
        let us = b.complete.since(b.start).as_us();
        assert!((1300..1320).contains(&us), "{us} us");
    }

    #[test]
    fn non_contiguous_read_seeks_again() {
        let mut d = Disk::new(DiskConfig::paper());
        let a = d.read(0, 4096, SimTime::ZERO);
        let b = d.read(1 << 30, 4096, a.complete);
        assert!(!b.sequential);
        // Coming back also seeks.
        let c = d.read(8192, 4096, b.complete);
        assert!(!c.sequential);
        assert_eq!(d.stats().seeks.get(), 2);
    }

    #[test]
    fn overlapping_requests_queue() {
        let mut d = Disk::new(DiskConfig::paper());
        let a = d.read(0, 65536, SimTime::ZERO);
        let b = d.read(65536, 65536, SimTime::ZERO);
        assert_eq!(b.start, a.complete);
    }

    #[test]
    fn byte_ready_interpolates() {
        let mut d = Disk::new(DiskConfig::paper());
        let x = d.read(0, 50_000_000, SimTime::ZERO);
        // Byte 25 MB ready half a second after first byte.
        let mid = x.byte_ready(25_000_000);
        assert_eq!(mid.since(x.first_byte).as_us(), 500_000);
        assert_eq!(x.byte_ready(x.len), x.complete);
    }

    #[test]
    fn forced_seek_spikes_one_request() {
        let mut d = Disk::new(DiskConfig::paper());
        let a = d.read(0, 4096, SimTime::ZERO);
        assert!(a.sequential);
        d.force_seek_next();
        // Contiguous, but the injected spike forces positioning.
        let b = d.read(4096, 4096, a.complete);
        assert!(!b.sequential);
        assert_eq!(b.first_byte.since(b.start).as_ns(), 8_000_000);
        // One-shot: the following contiguous read streams again.
        let c = d.read(8192, 4096, b.complete);
        assert!(c.sequential);
    }

    #[test]
    fn snapshot_restores_head_and_spike() {
        let mut d = Disk::new(DiskConfig::paper());
        d.read(0, 4096, SimTime::ZERO);
        d.force_seek_next();
        let mut w = SnapWriter::new();
        d.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = Disk::new(DiskConfig::paper());
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();
        // Contiguous read: the restored disk still pays the one-shot
        // forced seek and queues behind the same busy window.
        let t = SimTime::ZERO;
        assert_eq!(d.read(4096, 4096, t), back.read(4096, 4096, t));
        assert_eq!(back.stats().seeks.get(), d.stats().seeks.get());
        assert_eq!(back.stats().bytes.get(), d.stats().bytes.get());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::new(DiskConfig::paper());
        let a = d.read(0, 100, SimTime::ZERO);
        d.write(100, 200, a.complete);
        assert_eq!(d.stats().requests.get(), 2);
        assert_eq!(d.stats().bytes.get(), 300);
    }
}
