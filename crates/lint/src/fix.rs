//! `check --fix`: mechanical rewrites for the two rules whose fix is
//! unambiguous.
//!
//! Two finding kinds are safe to rewrite without judgment:
//!
//! - **unused-allow** — the directive suppresses nothing, so deleting
//!   it cannot change what the checker reports (beyond removing the
//!   finding itself). The whole `// asan-lint: …` comment goes; if the
//!   line is then blank, the line goes too.
//! - **no-unordered-iteration** — `HashMap → BTreeMap` and `HashSet →
//!   BTreeSet` are drop-in for the operations the model crates use,
//!   and the flagged line names the type (declaration, `use`, or
//!   constructor) directly.
//!
//! Everything else (a wall-clock read, a transposed snapshot tape) has
//! a design decision inside it and stays manual. Fixing is idempotent
//! by construction: each rewrite removes exactly the finding that
//! requested it, so a second `--fix` run finds nothing to do — CI
//! asserts this by running the fixer twice and diffing.
//!
//! Files with *unstaged* git modifications are refused (skipped, with
//! a note) unless `--fix-dirty` is given: the fixer must never
//! interleave its edits with work the author has not yet staged, where
//! a `git checkout -- <file>` after a surprise rewrite would destroy
//! both.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::diag::Diagnostic;
use crate::rules;

/// What one `--fix` pass did.
#[derive(Debug, Default)]
pub struct FixOutcome {
    /// Files rewritten (or, under dry-run, that would be).
    pub files_fixed: usize,
    /// Individual findings rewritten away.
    pub edits: usize,
    /// Workspace-relative paths skipped because they carry unstaged
    /// modifications (rerun with `--fix-dirty` to include them).
    pub skipped_dirty: Vec<String>,
}

/// Whether `check --fix` knows a mechanical rewrite for this finding.
pub fn is_fixable(d: &Diagnostic) -> bool {
    d.rule == rules::UNUSED_ALLOW || d.rule == "no-unordered-iteration"
}

/// Applies every mechanical fix for `diags` under `root`. With
/// `dry_run`, counts what would change but writes nothing.
pub fn apply(
    root: &Path,
    diags: &[Diagnostic],
    allow_dirty: bool,
    dry_run: bool,
) -> Result<FixOutcome, String> {
    let dirty = if allow_dirty {
        BTreeSet::new()
    } else {
        dirty_files(root)
    };
    let mut by_file: BTreeMap<&str, Vec<&Diagnostic>> = BTreeMap::new();
    for d in diags.iter().filter(|d| is_fixable(d)) {
        by_file.entry(d.file.as_str()).or_default().push(d);
    }

    let mut outcome = FixOutcome::default();
    for (rel, file_diags) in by_file {
        if dirty.contains(rel) {
            outcome.skipped_dirty.push(rel.to_string());
            continue;
        }
        let path = if Path::new(rel).is_absolute() {
            PathBuf::from(rel)
        } else {
            root.join(rel)
        };
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let had_trailing_newline = src.ends_with('\n');
        let mut lines: Vec<Option<String>> = src.lines().map(|l| Some(l.to_string())).collect();
        let mut edits = 0usize;
        // Bottom-up so earlier edits cannot shift later line numbers;
        // `lines` slots are only ever rewritten or tombstoned, never
        // spliced, so indexes stay stable anyway.
        let mut ordered: Vec<&Diagnostic> = file_diags;
        ordered.sort_by_key(|d| std::cmp::Reverse(d.line));
        for d in ordered {
            let idx = (d.line as usize).wrapping_sub(1);
            let Some(slot) = lines.get_mut(idx) else {
                continue;
            };
            let Some(line) = slot.as_ref() else { continue };
            let fixed = if d.rule == rules::UNUSED_ALLOW {
                strip_allow_comment(line)
            } else {
                Some(swap_unordered_types(line))
            };
            match fixed {
                Some(new) if new.trim().is_empty() && d.rule == rules::UNUSED_ALLOW => {
                    *slot = None;
                    edits += 1;
                }
                Some(new) if new != *line => {
                    *slot = Some(new);
                    edits += 1;
                }
                _ => {}
            }
        }
        if edits == 0 {
            continue;
        }
        outcome.files_fixed += 1;
        outcome.edits += edits;
        if dry_run {
            continue;
        }
        let mut rebuilt = lines.into_iter().flatten().collect::<Vec<_>>().join("\n");
        if had_trailing_newline {
            rebuilt.push('\n');
        }
        fs::write(&path, rebuilt).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(outcome)
}

/// Removes the `// asan-lint: …` comment from a line, returning the
/// remainder (trailing whitespace trimmed). `None` when no directive
/// comment is found (e.g. a block-comment directive — left for a
/// human).
fn strip_allow_comment(line: &str) -> Option<String> {
    let marker = line.find("asan-lint:")?;
    // Walk back to the `//` that opens the comment the marker sits in.
    let open = line[..marker].rfind("//")?;
    Some(line[..open].trim_end().to_string())
}

/// Rewrites `HashMap`/`HashSet` to their ordered counterparts,
/// whole-identifier matches only.
fn swap_unordered_types(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let hit = ["HashMap", "HashSet"].iter().find(|w| {
            chars[i..].starts_with(&w.chars().collect::<Vec<_>>()[..])
                && (i == 0 || !is_ident_char(chars[i - 1]))
                && chars.get(i + w.len()).is_none_or(|c| !is_ident_char(*c))
        });
        if let Some(w) = hit {
            out.push_str(if **w == *"HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            });
            i += w.len();
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Workspace-relative paths with unstaged modifications. A failing
/// `git` (no repository — e.g. the fixture tests' temp dirs) means
/// nothing is dirty.
fn dirty_files(root: &Path) -> BTreeSet<String> {
    let Ok(out) = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only"])
        .output()
    else {
        return BTreeSet::new();
    };
    if !out.status.success() {
        return BTreeSet::new();
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_allow_removes_only_the_comment() {
        assert_eq!(
            strip_allow_comment("let m = x; // asan-lint: allow(no-wall-clock) reviewed"),
            Some("let m = x;".to_string())
        );
        assert_eq!(
            strip_allow_comment("    // asan-lint: allow(no-wall-clock)"),
            Some(String::new())
        );
        assert_eq!(strip_allow_comment("let m = x; // plain comment"), None);
    }

    #[test]
    fn swap_is_whole_identifier_only() {
        assert_eq!(
            swap_unordered_types("use std::collections::{HashMap, HashSet};"),
            "use std::collections::{BTreeMap, BTreeSet};"
        );
        assert_eq!(
            swap_unordered_types("struct MyHashMapLike;"),
            "struct MyHashMapLike;"
        );
    }
}
