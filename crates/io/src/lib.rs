//! I/O subsystem models for the Active SAN simulator.
//!
//! Reproduces §4's I/O system: "Our I/O subsystem includes a TCA, an
//! ultra-320 SCSI bus, and simple disks." plus the fixed-cost OS
//! overhead model (30 µs/request + 0.27 µs/KB):
//!
//! * [`disk`] — seek / rotation / peak-bandwidth disk mechanisms;
//! * [`scsi`] — the shared 320 MB/s bus with arbitration + selection;
//! * [`storage`] — the striped two-disk array behind one TCA, producing
//!   per-MTU-packet ready schedules for the network;
//! * [`oscost`] — the host OS overhead constants.
//!
//! # Example
//!
//! ```
//! use asan_io::storage::{Storage, StorageConfig};
//! use asan_sim::SimTime;
//!
//! let mut s = Storage::new(StorageConfig::paper());
//! let sched = s.read_stream(0, 32 * 1024, SimTime::ZERO);
//! assert_eq!(sched.len(), 64); // 32 KB in 512 B packets
//! ```

pub mod disk;
pub mod oscost;
pub mod scsi;
pub mod storage;

pub use disk::{Disk, DiskConfig, DiskXfer};
pub use oscost::OsCost;
pub use scsi::{BusXfer, ScsiBus, ScsiConfig};
pub use storage::{ReadSchedule, Storage, StorageConfig};
