//! Corrected twin: every variant the engine ignores is either listed
//! explicitly or rejected loudly, so a misrouted or newly added
//! variant fails fast instead of vanishing.

impl Engine for DemoEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::Start(node) => self.start(node, t, bus),
            Event::IoComplete { host, req } => self.complete(host, req),
            other => unreachable!("not a demo event: {other:?}"),
        }
        Ok(())
    }
}
