//! A from-scratch MD5 implementation (RFC 1321).
//!
//! The MD5 benchmark (§5) computes real digests: the normal case chains
//! the whole file; the multi-processor case uses the paper's K-way
//! interleaved variant ("the I-th block is part of the 'I mod K'-th
//! chain. The resulting K digests themselves form a message, which can
//! be MD5-encoded using a single-block algorithm").

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

/// Incremental MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    len_bytes: u64,
    buf: [u8; 64],
    buf_len: usize,
}

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Md5 {
    /// Fresh state (RFC 1321 initialization vector).
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len_bytes: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Serializes the chain state mid-stream.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        for s in self.state {
            w.u32(s);
        }
        w.u64(self.len_bytes);
        w.bytes(&self.buf[..self.buf_len]);
    }

    /// Restores a chain state written by [`snapshot`](Md5::snapshot).
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut md5 = Md5::new();
        for s in &mut md5.state {
            *s = r.u32()?;
        }
        md5.len_bytes = r.u64()?;
        let partial = r.bytes()?;
        if partial.len() >= 64 {
            return Err(SnapError::Malformed("md5 partial block too long"));
        }
        md5.buf[..partial.len()].copy_from_slice(&partial);
        md5.buf_len = partial.len();
        Ok(md5)
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len_bytes += data.len() as u64;
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Fully absorbed into the partial block; do not disturb
                // buf_len below.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finalizes, returning the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

/// One-shot digest.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// The paper's K-way interleaved MD5: unit `i` of `unit_bytes` belongs
/// to chain `i mod k`; the final digest is the MD5 of the concatenated
/// chain digests.
pub fn md5_interleaved(data: &[u8], k: usize, unit_bytes: usize) -> [u8; 16] {
    assert!(k >= 1 && unit_bytes > 0, "bad interleave parameters");
    let mut chains: Vec<Md5> = (0..k).map(|_| Md5::new()).collect();
    for (i, chunk) in data.chunks(unit_bytes).enumerate() {
        chains[i % k].update(chunk);
    }
    let mut combined = Md5::new();
    for c in chains {
        combined.update(&c.finalize());
    }
    combined.finalize()
}

/// Hex rendering of a digest.
pub fn hex(d: &[u8; 16]) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&str, &str); 7] = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&md5(input.as_bytes())), want, "input {input:?}");
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31) as u8).collect();
        let oneshot = md5(&data);
        let mut inc = Md5::new();
        for chunk in data.chunks(517) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), oneshot);
    }

    #[test]
    fn interleaved_k1_equals_plain() {
        let data = vec![0xC3u8; 4096];
        assert_ne!(md5_interleaved(&data, 1, 512), md5(&data));
        // k=1 interleave is the plain chain of digests of one chain —
        // i.e. md5(md5(data)).
        let expect = md5(&md5(&data));
        assert_eq!(md5_interleaved(&data, 1, 512), expect);
    }

    #[test]
    fn interleaved_chains_differ_by_k() {
        let data: Vec<u8> = (0..8192u32).map(|i| i as u8).collect();
        let d1 = md5_interleaved(&data, 1, 512);
        let d2 = md5_interleaved(&data, 2, 512);
        let d4 = md5_interleaved(&data, 4, 512);
        assert_ne!(d1, d2);
        assert_ne!(d2, d4);
        // Deterministic.
        assert_eq!(d4, md5_interleaved(&data, 4, 512));
    }

    #[test]
    fn empty_and_boundary_lengths() {
        // Exactly one block (64 B) and the 55/56-byte padding boundary.
        for len in [0usize, 55, 56, 57, 63, 64, 65, 128] {
            let data = vec![0x5Au8; len];
            let d = md5(&data);
            let mut inc = Md5::new();
            inc.update(&data);
            assert_eq!(inc.finalize(), d, "len {len}");
        }
    }
}
