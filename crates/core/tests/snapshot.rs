//! Snapshot/restore round trips through the public [`Cluster`] API:
//! pausing a run at an arbitrary event boundary, serializing the full
//! dynamic state, restoring it into a freshly built cluster, and
//! checking the continued run is bit-identical to an unbroken one —
//! with and without active handlers, and under active fault injection
//! (snapshots landing between a NAK and its retransmit, and between a
//! timeout arming and firing).

use asan_core::active::ActiveSwitchConfig;
use asan_core::cluster::{Cluster, ClusterConfig, Dest, FileId, HostCtx, HostMsg, HostProgram};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, LinkConfig, NodeId};
use asan_sim::faults::FaultPlan;
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

fn single_switch(hosts: usize, tcas: usize) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let hs: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
    let ts: Vec<NodeId> = (0..tcas).map(|_| b.add_tca()).collect();
    for &h in &hs {
        b.connect(h, sw, LinkConfig::paper());
    }
    for &t in &ts {
        b.connect(t, sw, LinkConfig::paper());
    }
    (b, hs, ts, sw)
}

/// Issues an active read and waits for the handler's result message.
/// Stateful across hooks, so it implements the snapshot hooks.
struct ActiveCount {
    file: FileId, // asan-lint: allow(snapshot-completeness)
    sw: NodeId,   // asan-lint: allow(snapshot-completeness)
    result: Option<u64>,
}

impl HostProgram for ActiveCount {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let len = ctx.file_len(self.file);
        ctx.read_file(
            self.file,
            0,
            len,
            Dest::Mapped {
                node: self.sw,
                handler: HandlerId::new(1),
                base_addr: 0,
            },
        );
    }
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        self.result = Some(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        ctx.finish();
    }
    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.opt_u64(self.result);
    }
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.result = r.opt_u64()?;
        Ok(())
    }
}

/// Counts matching bytes in the switch; sends the count home once the
/// expected volume has streamed through. Running state (count, total)
/// crosses invocations, so it implements the snapshot hooks.
struct CountHandler {
    needle: u8,   // asan-lint: allow(snapshot-completeness)
    host: NodeId, // asan-lint: allow(snapshot-completeness)
    count: u64,
    total: u64,
    expect: u64, // asan-lint: allow(snapshot-completeness)
}

impl Handler for CountHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        self.count += data.iter().filter(|&&b| b == self.needle).count() as u64;
        self.total += data.len() as u64;
        if self.total >= self.expect {
            ctx.send(self.host, None, 0, &self.count.to_le_bytes());
        }
    }
    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.u64(self.total);
    }
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.count = r.u64()?;
        self.total = r.u64()?;
        Ok(())
    }
}

/// Builds the active-count cluster: one host streams `len` bytes of
/// 0x5A through a counting handler on the switch.
fn build_active(faults: Option<FaultPlan>, len: usize) -> Cluster {
    let (topo, hs, ts, sw) = single_switch(1, 1);
    let mut cfg = ClusterConfig::paper();
    cfg.faults = faults;
    let mut cl = Cluster::new(topo, cfg);
    let file = cl.add_file(ts[0], vec![0x5A; len]).unwrap();
    cl.set_program(
        hs[0],
        Box::new(ActiveCount {
            file,
            sw,
            result: None,
        }),
    )
    .unwrap();
    cl.register_handler(
        sw,
        HandlerId::new(1),
        Box::new(CountHandler {
            needle: 0x5A,
            host: hs[0],
            count: 0,
            total: 0,
            expect: len as u64,
        }),
    )
    .unwrap();
    cl
}

/// Fingerprint of a completed run: stats digest, fault digest, metrics
/// digest, and the report's scalar fields.
fn fingerprint(cl: &Cluster, report: &asan_core::cluster::RunReport) -> (u64, u64, u64, u64, u64) {
    (
        cl.stats().digest(),
        cl.fault_stats().digest(),
        cl.metrics(report).digest(),
        report.finish.as_ps(),
        report.drain.as_ps(),
    )
}

/// Runs `build()` to completion unbroken, then replays it with a
/// snapshot/restore at each of `pauses` (event counts), asserting every
/// resumed run's fingerprint matches the unbroken one.
fn assert_roundtrips(build: impl Fn() -> Cluster, pauses: &[u64]) {
    let mut golden = build();
    let report = golden.run().unwrap();
    let want = fingerprint(&golden, &report);
    let total_events = report.events;
    for &k in pauses {
        let mut a = build();
        let paused = a.run_events(k).unwrap();
        if paused.is_some() {
            assert!(k >= total_events, "run finished early at pause {k}");
            continue;
        }
        let bytes = a.snapshot();
        drop(a);
        let mut b = build();
        b.restore(&bytes).unwrap();
        let report_b = b.run().unwrap();
        let got = fingerprint(&b, &report_b);
        assert_eq!(got, want, "diverged after restore at event {k}");
        assert_eq!(report_b.events, total_events, "event count at pause {k}");
    }
}

#[test]
fn active_read_roundtrips_at_many_pause_points() {
    assert_roundtrips(|| build_active(None, 16 * 1024), &[1, 7, 25, 60, 120]);
}

#[test]
fn snapshot_is_stable_across_identical_pauses() {
    let mut a = build_active(None, 16 * 1024);
    let mut b = build_active(None, 16 * 1024);
    assert!(a.run_events(40).unwrap().is_none());
    assert!(b.run_events(40).unwrap().is_none());
    assert_eq!(
        a.snapshot(),
        b.snapshot(),
        "snapshot bytes not deterministic"
    );
}

#[test]
fn nak_window_snapshot_restores_identically() {
    // Heavy corruption/drop with NAK retransmits armed: many pause
    // points land between a NAK being scheduled and its retransmit
    // firing. Every one must restore to the unbroken run's digests.
    let plan = FaultPlan {
        seed: 11,
        packet_corrupt_prob: 0.10,
        packet_drop_prob: 0.10,
        ..FaultPlan::default()
    };
    assert_roundtrips(
        || build_active(Some(plan.clone()), 16 * 1024),
        &[10, 33, 57, 90, 150, 230],
    );
}

#[test]
fn timeout_window_snapshot_restores_identically() {
    // NAK retransmits disabled: recovery is timeout-driven, so pause
    // points land between a watchdog arming and firing (including
    // after a backoff doubling).
    let plan = FaultPlan {
        seed: 7,
        packet_drop_prob: 0.15,
        nak_retransmit: false,
        ..FaultPlan::default()
    };
    assert_roundtrips(
        || build_active(Some(plan.clone()), 8 * 1024),
        &[5, 20, 45, 80, 130, 200],
    );
}

#[test]
fn restore_rejects_mismatched_shape() {
    let mut a = build_active(None, 16 * 1024);
    assert!(a.run_events(30).unwrap().is_none());
    let bytes = a.snapshot();
    // A cluster with a different handler set must refuse the snapshot.
    let (topo, hs, ts, sw) = single_switch(1, 1);
    let mut other = Cluster::new(topo, ClusterConfig::paper());
    let file = other.add_file(ts[0], vec![0x5A; 16 * 1024]).unwrap();
    other
        .set_program(
            hs[0],
            Box::new(ActiveCount {
                file,
                sw,
                result: None,
            }),
        )
        .unwrap();
    assert!(other.restore(&bytes).is_err());
}

#[test]
fn restore_rejects_truncated_bytes() {
    let mut a = build_active(None, 16 * 1024);
    assert!(a.run_events(30).unwrap().is_none());
    let bytes = a.snapshot();
    let mut b = build_active(None, 16 * 1024);
    assert!(b.restore(&bytes[..bytes.len() - 3]).is_err());
    // And trailing garbage is rejected too.
    let mut extended = bytes;
    extended.push(0xFF);
    let mut c = build_active(None, 16 * 1024);
    assert!(c.restore(&extended).is_err());
}

/// Forking: one warmed-up snapshot seeds several continuations; each
/// continuation is deterministic (fork twice → identical results).
#[test]
fn forked_continuations_are_deterministic() {
    let mut warm = build_active(None, 16 * 1024);
    assert!(warm.run_events(50).unwrap().is_none());
    let bytes = warm.snapshot();
    let run_fork = || {
        let mut f = build_active(None, 16 * 1024);
        f.restore(&bytes).unwrap();
        let r = f.run().unwrap();
        fingerprint(&f, &r)
    };
    assert_eq!(run_fork(), run_fork());
}

/// An active-TCA cluster (two-level active I/O) snapshots its TCA-side
/// engine too.
#[test]
fn active_tca_roundtrips() {
    let build = || {
        let (topo, hs, ts, _sw) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let file = cl.add_file(ts[0], vec![0x5A; 8 * 1024]).unwrap();
        cl.enable_active_tca(ts[0], ActiveSwitchConfig::paper())
            .unwrap();
        cl.set_program(
            hs[0],
            Box::new(ActiveCount {
                file,
                sw: ts[0],
                result: None,
            }),
        )
        .unwrap();
        cl.register_tca_handler(
            ts[0],
            HandlerId::new(1),
            Box::new(CountHandler {
                needle: 0x5A,
                host: hs[0],
                count: 0,
                total: 0,
                expect: 8 * 1024,
            }),
        )
        .unwrap();
        cl
    };
    assert_roundtrips(build, &[3, 11, 29, 55]);
}

/// A multi-switch fabric (radix-4 fat-tree, chained per-hop credit
/// drains) must round-trip exactly like the single-switch cluster:
/// the mapped storage stream crosses two switch hops before the
/// handler runs, and every pause point must restore bit-identically.
fn build_fabric_active(len: usize) -> Cluster {
    use asan_net::TopoSpec;

    let spec = TopoSpec::fat_tree(4, 4, 1);
    let (mut cl, map) = Cluster::from_spec(&spec, ClusterConfig::paper());
    let file = cl.add_file(map.tcas[0], vec![0x5A; len]).unwrap();
    // Handler on host 0's leaf: the stream flows TCA → root → leaf.
    let ingress = map.host_leaf[0];
    cl.set_program(
        map.hosts[0],
        Box::new(ActiveCount {
            file,
            sw: ingress,
            result: None,
        }),
    )
    .unwrap();
    cl.register_handler(
        ingress,
        HandlerId::new(1),
        Box::new(CountHandler {
            needle: 0x5A,
            host: map.hosts[0],
            count: 0,
            total: 0,
            expect: len as u64,
        }),
    )
    .unwrap();
    cl
}

#[test]
fn multi_switch_fabric_roundtrips_at_many_pause_points() {
    assert_roundtrips(|| build_fabric_active(8 * 1024), &[1, 9, 33, 80, 150]);
}

#[test]
fn multi_switch_snapshot_bytes_are_deterministic() {
    let mut a = build_fabric_active(8 * 1024);
    let mut b = build_fabric_active(8 * 1024);
    assert!(a.run_events(9).unwrap().is_none());
    assert!(b.run_events(9).unwrap().is_none());
    assert_eq!(
        a.snapshot(),
        b.snapshot(),
        "multi-switch snapshot bytes not deterministic"
    );
}
