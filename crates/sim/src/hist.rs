//! Dependency-free log-linear (HDR-style) latency histograms.
//!
//! The observability layer records every simulated-time latency — packet
//! end-to-end, handler occupancy, disk service, buffer wait, credit
//! stall — into a [`LogHistogram`]: 32 linear sub-buckets per power of
//! two, which bounds the relative quantile error at ~3% while keeping
//! the whole structure a flat array of counters (no allocation per
//! sample, no floating point on the record path, bit-identical merges).
//!
//! Values are picoseconds of *simulated* time ([`crate::SimDuration`]).
//! Everything here is deterministic: the same sample sequence produces
//! the same counters, quantiles, and digest on every machine, so
//! histograms can sit under the same golden-digest net as the cluster
//! statistics.
//!
//! # Example
//!
//! ```
//! use asan_sim::hist::LogHistogram;
//!
//! let mut h = LogHistogram::new();
//! for v in 1..=100 {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 100);
//! assert_eq!(h.percentile(50), 50);
//! assert_eq!(h.percentile(99), 99);
//! ```

use crate::faults::fnv1a_fold;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::SimDuration;

/// Linear sub-buckets per power of two (2^5 = 32).
const SUB_BITS: u32 = 5;
/// Sub-buckets per major (power-of-two) bucket.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A log-linear histogram of `u64` samples (picoseconds, typically).
///
/// Values below 32 land in exact unit-width buckets; above that, each
/// power-of-two range is split into 32 linear sub-buckets, so any
/// reported quantile is within one sub-bucket (≤ 1/32 relative error)
/// of the true sample.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Bucket counters; empty until the first sample, so the many
    /// histograms that never record anything (idle probe slots) cost no
    /// 15 KB allocation. An empty vector is observably identical to
    /// all-zero buckets everywhere below.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let major = (msb - SUB_BITS + 1) as u64;
    (major * SUB_BUCKETS + ((v >> shift) & (SUB_BUCKETS - 1))) as usize
}

/// Smallest value landing in bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let major = i / SUB_BUCKETS - 1;
    let sub = i % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << major
}

/// Largest value landing in bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    let iw = i as u64;
    if iw < SUB_BUCKETS {
        return iw;
    }
    let major = iw / SUB_BUCKETS - 1;
    bucket_lower(i).saturating_add((1u64 << major) - 1)
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a simulated duration (its picosecond count).
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ps());
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative: any merge order yields identical counters. Merging
    /// an empty histogram is free, and merging into an empty one is a
    /// single copy.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.counts.clone_from(&other.counts);
        } else {
            for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
                *a += *b;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty), by integer division.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (`0..=100`), as the upper bound of the
    /// bucket holding the rank-`⌈count·p/100⌉` sample, clamped to the
    /// recorded extrema. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * p.min(100)).div_ceil(100).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Writes the histogram sparsely: the aggregate fields plus only
    /// the non-zero buckets. An empty histogram restores to the
    /// unallocated state, so snapshotting idle probe slots stays free.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        w.usize(nonzero);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                w.u32(i as u32);
                w.u64(c);
            }
        }
    }

    /// Reads a histogram written by [`LogHistogram::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let nonzero = r.usize()?;
        let mut counts = Vec::new();
        if count > 0 {
            counts = vec![0; NUM_BUCKETS];
        }
        for _ in 0..nonzero {
            let i = r.usize_from_u32()?;
            let c = r.u64()?;
            *counts
                .get_mut(i)
                .ok_or(SnapError::Malformed("histogram bucket out of range"))? = c;
        }
        Ok(LogHistogram {
            counts,
            count,
            sum,
            min,
            max,
        })
    }

    /// Folds every non-zero counter into an FNV-1a digest, so a
    /// histogram can sit under the same determinism net as
    /// `ClusterStats`.
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        h = fnv1a_fold(h, self.count);
        h = fnv1a_fold(h, self.sum);
        h = fnv1a_fold(h, self.min());
        h = fnv1a_fold(h, self.max);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                h = fnv1a_fold(fnv1a_fold(h, i as u64), c);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_32() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_contain_their_values() {
        // Every probed value must land in a bucket whose [lower, upper]
        // range contains it, and bucket ranges must tile without gaps.
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v = {v}");
        }
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_upper(i).saturating_add(1),
                bucket_lower(i + 1),
                "gap after bucket {i}"
            );
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Values ≤ 127 sit in buckets at most 4 wide; 1..=100 keeps the
        // reported quantile within its bucket's upper bound.
        assert_eq!(h.percentile(50), 50);
        assert_eq!(h.percentile(90), 91);
        assert_eq!(h.percentile(99), 99);
        assert_eq!(h.percentile(0), 1);
        assert_eq!(h.percentile(100), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let mut h = LogHistogram::new();
        h.record(77_000);
        for p in [0, 50, 99, 100] {
            let q = h.percentile(p);
            assert_eq!(q, h.max(), "p{p}");
        }
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 900]);
        let b = mk(&[32, 33, 64]);
        let c = mk(&[1 << 30, 7]);

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.fold_digest(0), right.fold_digest(0));
        // And both equal recording everything into one histogram.
        let all = mk(&[1, 5, 900, 32, 33, 64, 1 << 30, 7]);
        assert_eq!(all.fold_digest(0), left.fold_digest(0));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = LogHistogram::new();
        for v in [4u64, 77, 3000] {
            a.record(v);
        }
        let empty = LogHistogram::new();
        let mut b = a.clone();
        b.merge(&empty);
        assert_eq!(a.fold_digest(3), b.fold_digest(3));
        let mut c = LogHistogram::new();
        c.merge(&a);
        assert_eq!(a.fold_digest(3), c.fold_digest(3));
        assert_eq!(c.percentile(50), a.percentile(50));
        c.record(5); // must keep recording correctly after the copy path
        assert_eq!(c.count(), 4);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 31, 32, 900, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let mut w = SnapWriter::new();
        h.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        let mut back = LogHistogram::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.fold_digest(9), h.fold_digest(9));
        // Restored histograms keep recording identically.
        back.record(77);
        let mut h2 = h.clone();
        h2.record(77);
        assert_eq!(back.fold_digest(9), h2.fold_digest(9));
    }

    #[test]
    fn empty_snapshot_restores_unallocated() {
        let h = LogHistogram::new();
        let mut w = SnapWriter::new();
        h.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        let back = LogHistogram::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert!(back.is_empty());
        assert_eq!(back.fold_digest(1), h.fold_digest(1));
        // The empty restore keeps the lazy-allocation property.
        assert!(back.counts.is_empty());
    }

    #[test]
    fn top_bucket_holds_the_extremes_of_the_u64_range() {
        // The overflow end of the range: u64::MAX and its neighborhood
        // must land in the final bucket without panicking, and every
        // statistic must stay exact (count/min/max) or saturate (sum).
        let top = NUM_BUCKETS - 1;
        assert_eq!(bucket_index(u64::MAX), top);
        assert!(bucket_lower(top) < bucket_upper(top));
        assert_eq!(bucket_upper(top), u64::MAX, "upper bound saturates");
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(bucket_lower(top));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), bucket_lower(top));
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        // All three samples share the top bucket, so every percentile
        // reports from it, clamped to the recorded extrema.
        assert_eq!(h.percentile(50), u64::MAX);
        assert_eq!(h.percentile(0), u64::MAX);
        // A merge that only touches the top bucket stays exact too.
        let mut other = LogHistogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn fold_digest_is_stable_across_merge_order() {
        // Folding the same multiset of samples must yield one digest no
        // matter how the parts were merged: pairwise, left-fold,
        // right-fold, or interleaved. This is what lets parallel sweep
        // workers merge partial histograms in completion order.
        let mk = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let parts = [
            mk(&[1, 2, 3]),
            mk(&[40, 50]),
            mk(&[7_000_000]),
            mk(&[u64::MAX, 0]),
            mk(&[]),
        ];
        let fold = |order: &[usize]| {
            let mut acc = LogHistogram::new();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc.fold_digest(0xfeed)
        };
        let reference = fold(&[0, 1, 2, 3, 4]);
        for order in [
            [4, 3, 2, 1, 0],
            [2, 0, 4, 1, 3],
            [1, 3, 0, 2, 4],
            [3, 4, 1, 0, 2],
        ] {
            assert_eq!(fold(&order), reference, "order {order:?}");
        }
        // Digest differs from folding a different multiset.
        assert_ne!(fold(&[0, 1, 2, 4, 4]), reference);
    }

    #[test]
    fn digest_is_order_insensitive_but_value_sensitive() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [3u64, 99, 12345] {
            a.record(v);
        }
        for v in [12345u64, 3, 99] {
            b.record(v);
        }
        assert_eq!(a.fold_digest(7), b.fold_digest(7));
        b.record(4);
        assert_ne!(a.fold_digest(7), b.fold_digest(7));
    }
}
