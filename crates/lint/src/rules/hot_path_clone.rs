//! Rule `no-hot-path-clone`: engine event handlers must not clone.
//!
//! `on_event` is the simulator's hottest code path — every scheduled
//! event funnels through exactly one engine's handler, millions of
//! times per run. A `.clone()` there is a per-event allocation (or a
//! deep payload copy) that the zero-clone packet work removed: packet
//! payloads are reference-counted `Bytes` precisely so the hot path
//! can share instead of copy. Construction-time clones (engine setup,
//! `add_switch`, config plumbing) are fine — the rule patrols only
//! `fn on_event` bodies. A clone that is genuinely cheap and justified
//! (an `Rc` bump on a cold fault path, say) takes the standard
//! `// asan-lint: allow(no-hot-path-clone)` escape hatch, which makes
//! the cost visible at the call site.

use super::{is_punct, matching_brace, FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::Kind;

pub(crate) struct NoHotPathClone;

impl Rule for NoHotPathClone {
    fn name(&self) -> &'static str {
        "no-hot-path-clone"
    }

    fn describe(&self) -> &'static str {
        "deny .clone() inside engine on_event bodies (the per-event hot path)"
    }

    fn scope(&self) -> &'static str {
        "crates/core/src/engines"
    }

    fn since_pr(&self) -> u32 {
        5
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/core/src/engines/")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        let mut i = 0;
        while i < toks.len() {
            let is_on_event = toks[i].kind == Kind::Ident
                && toks[i].text == "fn"
                && matches!(toks.get(i + 1), Some(t) if t.text == "on_event");
            if !is_on_event {
                i += 1;
                continue;
            }
            let Some(open) = (i..toks.len()).find(|&j| is_punct(toks, j, "{")) else {
                return;
            };
            let close = matching_brace(toks, open);
            for j in open..close {
                let is_clone_call = toks[j].kind == Kind::Ident
                    && toks[j].text == "clone"
                    && is_punct(toks, j.wrapping_sub(1), ".")
                    && is_punct(toks, j + 1, "(");
                if is_clone_call {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Deny,
                        file: ctx.rel_path.to_string(),
                        line: toks[j].line,
                        col: toks[j].col,
                        message: ".clone() in an engine's on_event body — the per-event hot \
                                  path; share (`Bytes`/`Rc`), borrow, or hoist the clone to \
                                  construction time, or justify it with an allow comment"
                            .to_string(),
                    });
                }
            }
            i = close.max(i + 1);
        }
    }
}
