//! Renders tables from the harness's JSON documents.
//!
//! ```text
//! analyze breakdown <file.json>   per-phase time-breakdown table
//! analyze latency   <file.json>   latency-percentile table
//! analyze perf      <file.json>   wall-clock / events-per-sec table
//! ```
//!
//! `breakdown` and `latency` read what
//! `repro --small metrics --json > file.json` writes: the nine
//! benchmarks in the normal and active configurations, each with its
//! phase breakdown and latency percentiles. `perf` reads the
//! `BENCH_PERF.json` that `repro perf` writes. This subcommand is the
//! offline half of the observability pipeline — simulate once, slice
//! the report as many ways as needed.

use std::env;
use std::fs;
use std::process::ExitCode;

use asan_bench::{latency_report, parse_metrics_doc, perf, phase_breakdown_report};

fn usage() -> ExitCode {
    eprintln!("usage: analyze <breakdown|latency|perf> <file.json>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (cmd, path) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str()),
        _ => return usage(),
    };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("analyze: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cmd == "perf" {
        match perf::parse_perf_doc(&text) {
            Ok(doc) => print!("{}", perf::perf_report(&doc)),
            Err(e) => {
                eprintln!("analyze: {path} is not a perf document: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    let rows = match parse_metrics_doc(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {path} is not a metrics document: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "breakdown" => print!("{}", phase_breakdown_report(&rows)),
        "latency" => print!("{}", latency_report(&rows)),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
