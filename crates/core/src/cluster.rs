//! The whole-system simulator: hosts, HCAs, active switches, TCAs,
//! disks, and the event loop that ties them together.
//!
//! This is the reproduction of the paper's execution environment (§4):
//! host programs run as real Rust code charging time against detailed
//! CPU/cache/memory models; I/O requests pay the measured OS costs and
//! stream off the two-disk SCSI array as per-MTU packet schedules; the
//! fabric moves packets with cut-through timing; and active messages
//! invoke switch handlers that process the actual bytes.
//!
//! The event loop is deterministic: ties in simulated time break by
//! insertion order ([`asan_sim::EventQueue`]).

use std::collections::{BTreeMap, HashMap, HashSet};

use asan_cpu::{Cpu, CpuConfig};
use asan_io::{OsCost, Storage, StorageConfig};
use asan_net::topo::{NodeKind, TopologyBuilder};
use asan_net::{Fabric, HandlerId, Hca, HcaConfig, NodeId, HEADER_BYTES, MTU};
use asan_sim::faults::{DiskFate, FaultInjector, FaultPlan, FaultStats, PacketFate};
use asan_sim::stats::{TimeBreakdown, Traffic};
use asan_sim::{EventQueue, SimDuration, SimTime};

use crate::active::{ActiveSwitch, ActiveSwitchConfig, DispatchResult};
use crate::error::SimError;
use crate::handler::{Handler, SwitchIoReq};
use crate::stats::{
    CacheSnapshot, ClusterStats, CpuSnapshot, FabricSnapshot, HostSnapshot, StorageSnapshot,
    SwitchSnapshot,
};

/// Identifies an I/O request issued by a host program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u64);

/// Identifies a stored file (placed on one TCA's disk array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub usize);

/// Where a read's data should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// DMA into the issuing host's memory at `addr` (the normal path).
    HostBuf {
        /// Physical base address of the host buffer.
        addr: u64,
    },
    /// Stream to `node` as active messages mapped at `base_addr`,
    /// invoking `handler` per packet (the active path: the host "maps
    /// the file into memory" on the switch, §2.2).
    Mapped {
        /// Destination node (an active switch, usually).
        node: NodeId,
        /// Handler invoked per arriving packet.
        handler: HandlerId,
        /// Base of the mapped address window.
        base_addr: u32,
    },
}

/// A message as seen by a host program.
#[derive(Debug, Clone)]
pub struct HostMsg {
    /// Sending node.
    pub src: NodeId,
    /// Active-handler field, if the sender set one (lets programs
    /// demultiplex flows).
    pub handler: Option<HandlerId>,
    /// Address field of the header.
    pub addr: u32,
    /// Real payload bytes.
    pub data: Vec<u8>,
    /// Flow sequence number.
    pub seq: u32,
}

/// A host-resident application (one per compute node).
///
/// Programs are state machines: the cluster calls these hooks in
/// simulated-time order, and the program charges CPU time through the
/// [`HostCtx`] as it processes real data.
pub trait HostProgram {
    /// Called once at time zero.
    fn on_start(&mut self, ctx: &mut HostCtx<'_>);

    /// Called when an I/O request previously issued via
    /// [`HostCtx::read_file`] has fully delivered its data.
    fn on_io_complete(&mut self, _ctx: &mut HostCtx<'_>, _req: ReqId) {}

    /// Called when a message arrives for this host.
    fn on_message(&mut self, _ctx: &mut HostCtx<'_>, _msg: &HostMsg) {}

    /// Downcasting hook so benchmarks can read back program state after
    /// a run (`Some(self)` in implementations that support it).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl std::fmt::Debug for dyn HostProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<host program>")
    }
}

/// Metadata of a stored file.
#[derive(Debug, Clone, Copy)]
pub struct FileMeta {
    /// The TCA whose disks hold the file.
    pub tca: NodeId,
    /// File length in bytes.
    pub len: u64,
    /// Byte offset of the file on the array.
    pub disk_offset: u64,
}

#[derive(Debug)]
enum Effect {
    Io {
        req: ReqId,
        file: FileId,
        offset: u64,
        len: u64,
        dest: Dest,
        issue_at: SimTime,
    },
    Send {
        dst: NodeId,
        handler: Option<HandlerId>,
        addr: u32,
        data: Vec<u8>,
        ready: SimTime,
    },
    Finish,
}

/// Kernel/OS services available to a host program during a callback.
#[derive(Debug)]
pub struct HostCtx<'a> {
    cpu: &'a mut Cpu,
    hca: &'a mut Hca,
    node: NodeId,
    os: OsCost,
    files: &'a [FileMeta],
    next_req: &'a mut u64,
    effects: Vec<Effect>,
}

impl HostCtx<'_> {
    /// This host's node ID.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current local time.
    pub fn now(&self) -> SimTime {
        self.cpu.now()
    }

    /// The CPU model, for charging application work (compute, loads,
    /// scans over real data).
    pub fn cpu(&mut self) -> &mut Cpu {
        self.cpu
    }

    /// Length of a stored file.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.files[file.0].len
    }

    /// Issues an asynchronous read of `[offset, offset+len)` of `file`,
    /// delivering to `dest`. Charges the issue share of the OS
    /// per-request cost now; the completion share (and the per-KB cost
    /// for host-destined data) is charged when the request completes.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the file or is empty.
    pub fn read_file(&mut self, file: FileId, offset: u64, len: u64, dest: Dest) -> ReqId {
        let meta = self.files[file.0];
        assert!(offset + len <= meta.len, "read beyond file end");
        assert!(len > 0, "zero-length read");
        // Issue share only; the completion share is charged at
        // IoComplete. Active (mapped) requests bypass the heavyweight
        // OS path entirely.
        match dest {
            Dest::HostBuf { .. } => self.cpu.charge_fixed_busy(self.os.per_request / 2),
            Dest::Mapped { .. } => self.cpu.charge_fixed_busy(self.os.active_request),
        }
        let req = ReqId(*self.next_req);
        *self.next_req += 1;
        self.effects.push(Effect::Io {
            req,
            file,
            offset,
            len,
            dest,
            issue_at: self.cpu.now(),
        });
        req
    }

    /// Sends `data` to `dst` (packetized into MTU packets by the HCA).
    /// `handler` names the switch handler for active messages, or tags
    /// the flow for host receivers.
    pub fn send(&mut self, dst: NodeId, handler: Option<HandlerId>, addr: u32, data: Vec<u8>) {
        let ready = self.hca.post_send(self.cpu);
        self.effects.push(Effect::Send {
            dst,
            handler,
            addr,
            data,
            ready,
        });
    }

    /// Declares this host's program finished.
    pub fn finish(&mut self) {
        self.effects.push(Effect::Finish);
    }
}

#[derive(Debug)]
struct HostNode {
    cpu: Cpu,
    hca: Hca,
    program: Option<Box<dyn HostProgram>>,
    finished_at: Option<SimTime>,
    payload: Traffic,
    /// Remaining CPU time of a co-scheduled background job that soaks
    /// up this host's idle time (the paper's "multi-programmed server"
    /// scenario: freed host cycles are usable by other tasks).
    background_left: SimDuration,
    /// When the background job completed, if it did.
    background_done: Option<SimTime>,
}

#[derive(Debug)]
struct TcaNode {
    storage: Storage,
    /// Next free byte on the array (files are placed sequentially).
    alloc_cursor: u64,
    /// Archive-write aggregation.
    write_pending: u64,
    write_cursor: u64,
    last_write_done: SimTime,
    write_chunk: u64,
}

#[derive(Debug)]
struct IoState {
    host: NodeId,
    dest: Dest,
    remaining: usize,
    bytes: u64,
    /// The TCA serving this request.
    tca: NodeId,
    /// The file being read.
    file: FileId,
    /// File-relative byte offset of the read.
    offset: u64,
    /// Per-sequence-number delivery flags (populated when the storage
    /// read schedule is known; only under an armed fault plan).
    got: Vec<bool>,
    /// Per-sequence-number payload lengths, for buffer-cache re-reads
    /// on retransmission.
    lens: Vec<u32>,
    /// First fault category seen per sequence number (0 = none,
    /// 1 = corrupt, 2 = drop) — attributes eventual recovery.
    faulted: Vec<u8>,
    /// End-to-end timeout attempts so far.
    attempt: u32,
    /// Current (exponentially backed-off) timeout.
    timeout: SimDuration,
}

/// Per-request reorder buffer for mapped flows under fault injection:
/// a stream handler must see its packets in sequence order, so late
/// retransmits park arrivals here until the gap fills.
#[derive(Debug, Default)]
struct FlowState {
    next_seq: u32,
    buffered: BTreeMap<u32, asan_net::Packet>,
}

#[derive(Debug)]
enum Event {
    Start(NodeId),
    /// A whole packet finished arriving at a host.
    PacketToHost {
        host: NodeId,
        msg: HostMsg,
        io_req: Option<ReqId>,
    },
    /// An active packet's header reached a switch (payload window given).
    /// `io_req` is set for mapped storage data under a fault plan, which
    /// is tracked per sequence number and delivered in order.
    PacketToSwitch {
        sw: NodeId,
        pkt: asan_net::Packet,
        payload_start: SimTime,
        payload_end: SimTime,
        io_req: Option<ReqId>,
    },
    /// A packet for a trapped handler reached the fallback host and is
    /// dispatched on its software engine.
    FallbackDispatch {
        sw: NodeId,
        pkt: asan_net::Packet,
    },
    /// Raw data arrived at a TCA (archive-write stream).
    PacketToTca {
        tca: NodeId,
        bytes: u64,
    },
    /// A host-issued I/O request's control packet reached its TCA (or a
    /// soft-errored disk attempt is being retried).
    IoRequestAtTca {
        tca: NodeId,
        req: ReqId,
        file: FileId,
        offset: u64,
        len: u64,
        dest: Dest,
        attempt: u32,
    },
    /// A switch-initiated I/O request reached its TCA.
    SwitchIoAtTca {
        r: SwitchIoReq,
        attempt: u32,
    },
    /// All data of `req` delivered; notify the issuing host.
    IoComplete {
        host: NodeId,
        req: ReqId,
    },
    /// The TCA finished injecting a mapped read's data: send the small
    /// completion notification to the issuing host *now* (deferred so
    /// the fabric only ever sees causally-ordered sends per link).
    CompletionNotice {
        tca: NodeId,
        host: NodeId,
        req: ReqId,
    },
    /// One MTU packet of a storage read becomes ready at its TCA: inject
    /// it into the fabric *now*. Deferring each injection to its ready
    /// time keeps every link's sends causally ordered, so small control
    /// messages interleave with bulk data instead of queueing behind
    /// pre-booked future transfers.
    InjectIoPacket {
        src: NodeId,
        dst: NodeId,
        handler: Option<HandlerId>,
        addr: u32,
        payload: Vec<u8>,
        seq: u32,
        io_req: Option<ReqId>,
    },
    /// Retransmit packet `seq` of `req` from the TCA's buffer cache
    /// (NAK- or timeout-driven).
    Retransmit {
        req: ReqId,
        seq: u32,
    },
    /// End-to-end watchdog for `req`; stale timers carry an old
    /// `attempt` and are ignored.
    RequestTimeout {
        req: ReqId,
        attempt: u32,
    },
}

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Host CPU/cache configuration.
    pub host_cpu: CpuConfig,
    /// HCA cost parameters.
    pub hca: HcaConfig,
    /// OS I/O overhead constants.
    pub os: OsCost,
    /// Storage array per TCA.
    pub storage: StorageConfig,
    /// Active-switch configuration (applied to every switch node).
    pub active: ActiveSwitchConfig,
    /// Event-count safety limit (deadlock/livelock guard).
    pub max_events: u64,
    /// Deterministic fault plan, if any. `None` (the default) runs the
    /// simulator exactly as before faults existed.
    pub faults: Option<FaultPlan>,
}

impl ClusterConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        ClusterConfig {
            host_cpu: CpuConfig::host(),
            hca: HcaConfig::paper(),
            os: OsCost::paper(),
            storage: StorageConfig::paper(),
            active: ActiveSwitchConfig::paper(),
            max_events: 80_000_000,
            faults: None,
        }
    }

    /// The paper's database configuration (scaled host caches, §4).
    pub fn paper_db() -> Self {
        ClusterConfig {
            host_cpu: CpuConfig::host_db(),
            ..ClusterConfig::paper()
        }
    }
}

/// Per-host results.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// The host's node ID.
    pub node: NodeId,
    /// Busy/stall/idle breakdown padded to the run's finish time.
    pub breakdown: TimeBreakdown,
    /// Payload bytes in/out of this host.
    pub payload: Traffic,
    /// When this host's program finished.
    pub finished_at: SimTime,
    /// When the co-scheduled background job finished (`None` if it was
    /// still unfinished when the run ended, or none was scheduled).
    pub background_done: Option<SimTime>,
    /// Background CPU time left unconsumed at the end of the run.
    pub background_left: SimDuration,
}

/// Per-switch results.
#[derive(Debug, Clone)]
pub struct SwitchReport {
    /// The switch's node ID.
    pub node: NodeId,
    /// Per-CPU breakdowns padded to the run's finish time.
    pub cpu_breakdowns: Vec<TimeBreakdown>,
    /// Handler invocations.
    pub invocations: u64,
    /// Active payload bytes consumed by handlers.
    pub bytes_in: u64,
    /// Payload bytes emitted by handlers.
    pub bytes_out: u64,
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// When the last host program finished.
    pub finish: SimTime,
    /// When the last event (including trailing archive writes) drained.
    pub drain: SimTime,
    /// Per-host results.
    pub hosts: Vec<HostReport>,
    /// Per-switch results.
    pub switches: Vec<SwitchReport>,
    /// Bytes carried by the fabric, summed over every link hop.
    pub link_bytes: u64,
    /// Events processed (diagnostic).
    pub events: u64,
}

impl RunReport {
    /// The report of host `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAHost`] if `node` is not a host in this
    /// run.
    pub fn host(&self, node: NodeId) -> Result<&HostReport, SimError> {
        self.hosts
            .iter()
            .find(|h| h.node == node)
            .ok_or(SimError::NotAHost(node))
    }

    /// The report of switch `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASwitch`] if `node` is not a switch in
    /// this run.
    pub fn switch(&self, node: NodeId) -> Result<&SwitchReport, SimError> {
        self.switches
            .iter()
            .find(|s| s.node == node)
            .ok_or(SimError::NotASwitch(node))
    }

    /// Mean host utilization (the paper's `(1 − idle)/exec`).
    pub fn mean_host_utilization(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts
            .iter()
            .map(|h| h.breakdown.utilization())
            .sum::<f64>()
            / self.hosts.len() as f64
    }

    /// Total payload traffic in/out across all hosts (the paper's
    /// "host I/O traffic" metric).
    pub fn total_host_payload(&self) -> u64 {
        self.hosts.iter().map(|h| h.payload.total()).sum()
    }
}

/// The assembled cluster simulation.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    fabric: Fabric,
    queue: EventQueue<Event>,
    hosts: HashMap<NodeId, HostNode>,
    host_order: Vec<NodeId>,
    switches: HashMap<NodeId, ActiveSwitch>,
    switch_order: Vec<NodeId>,
    /// Optional active engines on TCA nodes: "a two-level active I/O
    /// system" (§6) — intelligent disks below the active switches.
    active_tcas: HashMap<NodeId, ActiveSwitch>,
    tcas: HashMap<NodeId, TcaNode>,
    files_meta: Vec<FileMeta>,
    files_data: Vec<Vec<u8>>,
    reqs: HashMap<ReqId, IoState>,
    next_req: u64,
    events: u64,
    /// Armed fault injector (None ⇒ the pre-fault simulator, bit for
    /// bit).
    injector: Option<FaultInjector>,
    /// `(switch, handler)` pairs whose jump-table entry was disabled by
    /// a trap; their streams route to the fallback host.
    trapped: HashSet<(NodeId, HandlerId)>,
    /// Host-side software engines holding migrated handlers, keyed by
    /// the original switch so handler state stays per-switch.
    fallback_engines: HashMap<NodeId, ActiveSwitch>,
    /// The host that runs fallback engines (lowest-numbered host).
    fallback_host: Option<NodeId>,
    /// Reorder buffers for mapped flows under faults.
    flows: HashMap<ReqId, FlowState>,
}

impl Cluster {
    /// Builds a cluster over `topo` with the given configuration.
    /// Every `Host` node gets a CPU + HCA; every `Switch` node gets an
    /// active switch; every `Tca` node gets a storage array.
    pub fn new(topo: TopologyBuilder, cfg: ClusterConfig) -> Self {
        let fabric = topo.build();
        let mut hosts = HashMap::new();
        let mut switches = HashMap::new();
        let mut tcas = HashMap::new();
        let mut host_order = Vec::new();
        let mut switch_order = Vec::new();
        for i in 0..fabric.num_nodes() {
            let id = NodeId(i as u16);
            match fabric.kind(id) {
                NodeKind::Host => {
                    host_order.push(id);
                    hosts.insert(
                        id,
                        HostNode {
                            cpu: Cpu::new(cfg.host_cpu.clone()),
                            hca: Hca::new(cfg.hca),
                            program: None,
                            finished_at: None,
                            payload: Traffic::default(),
                            background_left: SimDuration::ZERO,
                            background_done: None,
                        },
                    );
                }
                NodeKind::Switch => {
                    switch_order.push(id);
                    switches.insert(id, ActiveSwitch::new(id, cfg.active.clone()));
                }
                NodeKind::Tca => {
                    tcas.insert(
                        id,
                        TcaNode {
                            storage: Storage::new(cfg.storage),
                            alloc_cursor: 0,
                            write_pending: 0,
                            write_cursor: 1 << 40, // archive region
                            last_write_done: SimTime::ZERO,
                            write_chunk: 64 * 1024,
                        },
                    );
                }
            }
        }
        let injector = cfg.faults.clone().map(FaultInjector::new);
        Cluster {
            cfg,
            fabric,
            queue: EventQueue::new(),
            hosts,
            host_order,
            switches,
            switch_order,
            active_tcas: HashMap::new(),
            tcas,
            files_meta: Vec::new(),
            files_data: Vec::new(),
            reqs: HashMap::new(),
            next_req: 0,
            events: 0,
            injector,
            trapped: HashSet::new(),
            fallback_engines: HashMap::new(),
            fallback_host: None,
            flows: HashMap::new(),
        }
    }

    /// Stores `data` as a file on `tca`'s array, returning its ID.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotATca`] if `tca` is not a TCA node.
    pub fn add_file(&mut self, tca: NodeId, data: Vec<u8>) -> Result<FileId, SimError> {
        let t = self.tcas.get_mut(&tca).ok_or(SimError::NotATca(tca))?;
        let id = FileId(self.files_meta.len());
        self.files_meta.push(FileMeta {
            tca,
            len: data.len() as u64,
            disk_offset: t.alloc_cursor,
        });
        // Files are stripe-aligned: they never share a stripe unit but
        // consecutively-added files stay contiguous on the platters
        // (as a freshly written file set would be).
        let stripe = self.cfg.storage.stripe_bytes;
        t.alloc_cursor += (data.len() as u64).div_ceil(stripe).max(1) * stripe;
        self.files_data.push(data);
        Ok(id)
    }

    /// Co-schedules `cpu_time` of background computation on host
    /// `node`: it consumes time the foreground program would otherwise
    /// spend idle (an OS timeslicing other processes onto the freed
    /// CPU). The run report shows when it completed — the quantitative
    /// form of the paper's claim that lower host utilization "allows
    /// other tasks to be performed concurrently".
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAHost`] if `node` is not a host.
    pub fn set_background_job(
        &mut self,
        node: NodeId,
        cpu_time: SimDuration,
    ) -> Result<(), SimError> {
        let h = self.hosts.get_mut(&node).ok_or(SimError::NotAHost(node))?;
        h.background_left = cpu_time;
        h.background_done = None;
        Ok(())
    }

    /// Installs `program` on host `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAHost`] if `node` is not a host, and
    /// [`SimError::ProgramAlreadyInstalled`] if it already has a
    /// program.
    pub fn set_program(
        &mut self,
        node: NodeId,
        program: Box<dyn HostProgram>,
    ) -> Result<(), SimError> {
        let h = self.hosts.get_mut(&node).ok_or(SimError::NotAHost(node))?;
        if h.program.is_some() {
            return Err(SimError::ProgramAlreadyInstalled(node));
        }
        h.program = Some(program);
        Ok(())
    }

    /// Registers `handler` under `id` on switch `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASwitch`] if `node` is not a switch.
    pub fn register_handler(
        &mut self,
        node: NodeId,
        id: HandlerId,
        handler: Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.switches
            .get_mut(&node)
            .ok_or(SimError::NotASwitch(node))?
            .register(id, handler);
        Ok(())
    }

    /// Removes a handler after a run so the caller can read back state
    /// accumulated inside it. Searches the original engine first, then
    /// any host-side fallback engine a trap migrated it to.
    pub fn take_handler(&mut self, node: NodeId, id: HandlerId) -> Option<Box<dyn Handler>> {
        if let Some(h) = self.switches.get_mut(&node).and_then(|s| s.take_handler(id)) {
            return Some(h);
        }
        if let Some(h) = self
            .active_tcas
            .get_mut(&node)
            .and_then(|e| e.take_handler(id))
        {
            return Some(h);
        }
        self.fallback_engines.get_mut(&node)?.take_handler(id)
    }

    /// Turns the TCA at `node` into an *active disk*: an embedded
    /// processor (same model as a switch CPU) that can run handlers on
    /// data as it streams off the array — §6's two-level active I/O.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotATca`] if `node` is not a TCA.
    pub fn enable_active_tca(
        &mut self,
        node: NodeId,
        cfg: ActiveSwitchConfig,
    ) -> Result<(), SimError> {
        if !self.tcas.contains_key(&node) {
            return Err(SimError::NotATca(node));
        }
        self.active_tcas.insert(node, ActiveSwitch::new(node, cfg));
        Ok(())
    }

    /// Registers `handler` on an active TCA previously enabled with
    /// [`enable_active_tca`](Cluster::enable_active_tca).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TcaNotActive`] if the TCA is not active.
    pub fn register_tca_handler(
        &mut self,
        node: NodeId,
        id: HandlerId,
        handler: Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.active_tcas
            .get_mut(&node)
            .ok_or(SimError::TcaNotActive(node))?
            .register(id, handler);
        Ok(())
    }

    /// Removes a host's program after a run so the caller can read back
    /// state accumulated inside it.
    pub fn take_program(&mut self, node: NodeId) -> Option<Box<dyn HostProgram>> {
        self.hosts.get_mut(&node)?.program.take()
    }

    /// The fabric (for traffic inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Snapshots every component's low-level counters (cache misses,
    /// ATB traffic, disk seeks, credit stalls, …) for diagnosis.
    pub fn stats(&self) -> ClusterStats {
        fn cache_snap(c: &asan_mem::Cache) -> CacheSnapshot {
            CacheSnapshot {
                accesses: c.stats().accesses(),
                misses: c.stats().misses.get(),
                writebacks: c.stats().writebacks.get(),
            }
        }
        fn cpu_snap(cpu: &Cpu) -> CpuSnapshot {
            let m = cpu.memory();
            CpuSnapshot {
                instructions: cpu.instructions(),
                l1d: cache_snap(m.l1d()),
                l1i: cache_snap(m.l1i()),
                l2: m.l2().map(cache_snap),
                dram_page_hits: m.dram().stats().page_hits.get(),
                dram_page_misses: m.dram().stats().page_misses.get(),
            }
        }
        let hosts = self
            .host_order
            .iter()
            .map(|id| {
                let h = &self.hosts[id];
                HostSnapshot {
                    node: *id,
                    cpu: cpu_snap(&h.cpu),
                    hca_sends: h.hca.sends(),
                    hca_recvs: h.hca.recvs(),
                }
            })
            .collect();
        let switches = self
            .switch_order
            .iter()
            .map(|id| {
                let s = &self.switches[id];
                // A trapped handler's work continues on a host-side
                // fallback engine; its counters still belong to this
                // switch logically.
                let fb = self.fallback_engines.get(id);
                SwitchSnapshot {
                    node: *id,
                    invocations: s.stats().invocations.get()
                        + fb.map_or(0, |f| f.stats().invocations.get()),
                    bytes_in: s.stats().bytes_in.get() + fb.map_or(0, |f| f.stats().bytes_in.get()),
                    bytes_out: s.stats().bytes_out.get()
                        + fb.map_or(0, |f| f.stats().bytes_out.get()),
                    buffer_allocs: s.dba().allocs(),
                    buffer_waits: s.dba().alloc_waits(),
                    buffer_peak: s.dba().occupancy().max().unwrap_or(0),
                    atb_hits: (0..s.config().num_cpus).map(|i| s.atb(i).hits()).sum(),
                    atb_misses: (0..s.config().num_cpus).map(|i| s.atb(i).misses()).sum(),
                    cpus: s.cpus().iter().map(cpu_snap).collect(),
                }
            })
            .collect();
        let mut storage = Vec::new();
        for i in 0..self.fabric.num_nodes() {
            let id = NodeId(i as u16);
            if let Some(t) = self.tcas.get(&id) {
                storage.push(StorageSnapshot {
                    node: id,
                    disk_bytes: t
                        .storage
                        .disks()
                        .iter()
                        .map(|d| d.stats().bytes.get())
                        .collect(),
                    disk_seeks: t
                        .storage
                        .disks()
                        .iter()
                        .map(|d| d.stats().seeks.get())
                        .collect(),
                    bus_bursts: t.storage.bus().stats().bursts.get(),
                    bus_bytes: t.storage.bus().stats().bytes.get(),
                });
            }
        }
        ClusterStats {
            hosts,
            switches,
            storage,
            fabric: FabricSnapshot {
                link_bytes: self.fabric.total_link_bytes(),
                credit_stalls: self.fabric.total_credit_stalls(),
            },
            faults: self.fault_stats(),
            events: self.events,
        }
    }

    /// The fault counters accumulated so far (all zero when no plan is
    /// armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.as_ref().map(|i| i.stats).unwrap_or_default()
    }

    /// The active switch at `node` (for inspection).
    pub fn switch(&self, node: NodeId) -> Option<&ActiveSwitch> {
        self.switches.get(&node)
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the event-count
    /// guard trips (deadlock/livelock guard), and
    /// [`SimError::RetriesExhausted`] if a request's retry budget runs
    /// out under fault injection.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        // Arm the run-scoped faults of the plan, if any.
        if let Some(plan) = self.injector.as_ref().map(|i| i.plan().clone()) {
            for &(from, until) in &plan.link_outages {
                self.fabric.inject_outage(from, until);
            }
            if let Some(credits) = plan.credit_limit {
                self.fabric.restrict_credits(credits);
            }
            if let Some(seize) = plan.buffer_seize {
                let mut seized = 0u64;
                for engine in self
                    .switches
                    .values_mut()
                    .chain(self.active_tcas.values_mut())
                {
                    seized += seize.count.min(engine.config().num_buffers.saturating_sub(1))
                        as u64;
                    engine.seize_buffers(seize.count, seize.release_at);
                }
                let s = &mut self.injector.as_mut().expect("armed").stats.buffer_seize;
                s.injected += seized;
                s.degraded += seized;
            }
            self.fallback_host = self.host_order.iter().copied().min_by_key(|n| n.0);
        }
        for h in self.host_order.clone() {
            if self.hosts[&h].program.is_some() {
                self.queue.push(SimTime::ZERO, Event::Start(h));
            }
        }
        let mut drain = SimTime::ZERO;
        while let Some((t, ev)) = self.queue.pop() {
            self.events += 1;
            if std::env::var_os("ASAN_TRACE").is_some() {
                eprintln!(
                    "[ev {}] t={} {:?}",
                    self.events,
                    t,
                    match &ev {
                        Event::Start(_) => "Start",
                        Event::PacketToHost { .. } => "PacketToHost",
                        Event::PacketToSwitch { .. } => "PacketToSwitch",
                        Event::FallbackDispatch { .. } => "FallbackDispatch",
                        Event::PacketToTca { .. } => "PacketToTca",
                        Event::IoRequestAtTca { .. } => "IoRequestAtTca",
                        Event::SwitchIoAtTca { .. } => "SwitchIoAtTca",
                        Event::IoComplete { .. } => "IoComplete",
                        Event::CompletionNotice { .. } => "CompletionNotice",
                        Event::InjectIoPacket { .. } => "InjectIoPacket",
                        Event::Retransmit { .. } => "Retransmit",
                        Event::RequestTimeout { .. } => "RequestTimeout",
                    }
                );
            }
            if self.events > self.cfg.max_events {
                return Err(SimError::EventLimitExceeded {
                    at: t,
                    limit: self.cfg.max_events,
                });
            }
            drain = drain.max(t);
            self.handle(t, ev)?;
        }
        // Flush trailing archive writes.
        for tca in self.tcas.values_mut() {
            if tca.write_pending > 0 {
                let done = tca
                    .storage
                    .write(tca.write_cursor, tca.write_pending, drain);
                tca.write_cursor += tca.write_pending;
                tca.write_pending = 0;
                tca.last_write_done = tca.last_write_done.max(done);
            }
            drain = drain.max(tca.last_write_done);
        }
        // Link-outage accounting: each deferred send hit a down window
        // (detected by the link layer) and was delayed (degradation).
        if let Some(inj) = self.injector.as_mut() {
            let deferrals = self.fabric.total_outage_deferrals();
            inj.stats.link_outage.injected = inj.plan().link_outages.len() as u64;
            inj.stats.link_outage.detected = deferrals;
            inj.stats.link_outage.degraded = deferrals;
        }

        let finish = self
            .hosts
            .values()
            .filter_map(|h| h.finished_at)
            .fold(SimTime::ZERO, SimTime::max);
        let finish = if finish == SimTime::ZERO {
            drain
        } else {
            finish
        };

        let hosts = self
            .host_order
            .iter()
            .map(|&id| {
                let h = &self.hosts[&id];
                let mut b = *h.cpu.breakdown();
                b.pad_idle_to(finish.since(SimTime::ZERO));
                HostReport {
                    node: id,
                    breakdown: b,
                    payload: h.payload,
                    finished_at: h.finished_at.unwrap_or(finish),
                    background_done: h.background_done,
                    background_left: h.background_left,
                }
            })
            .collect();
        let switches = self
            .switch_order
            .iter()
            .map(|&id| {
                let s = &self.switches[&id];
                let fb = self.fallback_engines.get(&id);
                let mut bs = s.cpu_breakdowns();
                for b in &mut bs {
                    b.pad_idle_to(finish.since(SimTime::ZERO));
                }
                SwitchReport {
                    node: id,
                    cpu_breakdowns: bs,
                    invocations: s.stats().invocations.get()
                        + fb.map_or(0, |f| f.stats().invocations.get()),
                    bytes_in: s.stats().bytes_in.get() + fb.map_or(0, |f| f.stats().bytes_in.get()),
                    bytes_out: s.stats().bytes_out.get()
                        + fb.map_or(0, |f| f.stats().bytes_out.get()),
                }
            })
            .collect();
        Ok(RunReport {
            finish,
            drain: drain.max(finish),
            hosts,
            switches,
            link_bytes: self.fabric.total_link_bytes(),
            events: self.events,
        })
    }

    fn handle(&mut self, t: SimTime, ev: Event) -> Result<(), SimError> {
        match ev {
            Event::Start(h) => {
                self.call_host(h, t, None, None);
            }
            Event::PacketToHost { host, msg, io_req } => {
                let bytes = msg.data.len() as u64;
                let seq = msg.seq;
                let lat = self.hosts[&host].hca.config().recv_latency;
                match io_req {
                    Some(req) => {
                        // DMA of request data: no per-packet CPU cost.
                        let Some(st) = self.reqs.get_mut(&req) else {
                            // Late duplicate for a completed request (a
                            // timeout retransmit racing a NAK one).
                            return Ok(());
                        };
                        let done = if st.got.is_empty() {
                            st.remaining -= 1;
                            st.remaining == 0
                        } else {
                            let i = seq as usize;
                            if st.got[i] {
                                return Ok(()); // duplicate delivery
                            }
                            st.got[i] = true;
                            let cat = std::mem::take(&mut st.faulted[i]);
                            let all = st.got.iter().all(|&g| g);
                            self.note_recovered(cat);
                            all
                        };
                        // Only accepted stripes count as host payload:
                        // the HCA discards duplicates before DMA.
                        self.hosts
                            .get_mut(&host)
                            .expect("host exists")
                            .payload
                            .record_in(bytes);
                        if done {
                            self.queue.push(t + lat, Event::IoComplete { host, req });
                        }
                    }
                    None => {
                        self.hosts
                            .get_mut(&host)
                            .expect("host exists")
                            .payload
                            .record_in(bytes);
                        self.call_host(host, t, None, Some(msg));
                    }
                }
            }
            Event::PacketToSwitch {
                sw,
                pkt,
                payload_start,
                payload_end,
                io_req,
            } => match io_req {
                // Mapped storage data under a fault plan: release to
                // the handler strictly in sequence order.
                Some(req) => self.mapped_arrival(req, sw, pkt, t),
                None => self.dispatch_active(sw, &pkt, t, payload_start, payload_end),
            },
            Event::FallbackDispatch { sw, pkt } => {
                let fb = self.fallback_host.expect("fallback host exists");
                let result = self
                    .fallback_engines
                    .get_mut(&sw)
                    .expect("fallback engine exists")
                    .dispatch(&pkt, t, t, t);
                self.injector.as_mut().expect("armed").stats.fallback_packets += 1;
                self.apply_dispatch_result(sw, fb, pkt.header.seq, result);
            }
            Event::PacketToTca { tca, bytes } => {
                let node = self.tcas.get_mut(&tca).expect("tca exists");
                node.write_pending += bytes;
                if node.write_pending >= node.write_chunk {
                    let done = node.storage.write(node.write_cursor, node.write_pending, t);
                    node.write_cursor += node.write_pending;
                    node.write_pending = 0;
                    node.last_write_done = node.last_write_done.max(done);
                }
            }
            Event::IoRequestAtTca {
                tca,
                req,
                file,
                offset,
                len,
                dest,
                attempt,
            } => match self.disk_attempt(tca, req.0, attempt)? {
                Some(delay) => {
                    self.queue.push(
                        t + delay,
                        Event::IoRequestAtTca {
                            tca,
                            req,
                            file,
                            offset,
                            len,
                            dest,
                            attempt: attempt + 1,
                        },
                    );
                }
                None => self.start_storage_read(tca, req, file, offset, len, dest, t),
            },
            Event::SwitchIoAtTca { r, attempt } => {
                match self.disk_attempt(r.tca, r.file as u64, attempt)? {
                    Some(delay) => {
                        self.queue.push(
                            t + delay,
                            Event::SwitchIoAtTca {
                                r,
                                attempt: attempt + 1,
                            },
                        );
                    }
                    None => self.start_switch_read(&r, t),
                }
            }
            Event::InjectIoPacket {
                src,
                dst,
                handler,
                addr,
                payload,
                seq,
                io_req,
            } => {
                let wire = (payload.len() + HEADER_BYTES) as u64;
                if let Some(req) = io_req.filter(|_| self.injector.is_some()) {
                    match self.injector.as_mut().expect("armed").packet_fate() {
                        PacketFate::Deliver => {}
                        PacketFate::Corrupt(bit) => {
                            // The corrupted packet still occupies the
                            // wire; the receiver's ICRC check rejects it
                            // on arrival.
                            let d = self.fabric.transmit(wire, src, dst, t);
                            let mut pkt = asan_net::Packet::new(
                                asan_net::Header {
                                    src,
                                    dst,
                                    len: payload.len() as u16,
                                    handler,
                                    addr,
                                    seq,
                                },
                                payload,
                            );
                            pkt.corrupt_payload_bit(bit);
                            debug_assert!(!pkt.icrc_ok(), "corruption must break the ICRC");
                            self.mark_faulted(req, seq, 1);
                            let inj = self.injector.as_mut().expect("armed");
                            inj.stats.packet_corrupt.detected += 1;
                            let nak = inj.plan().nak_retransmit;
                            let delay = inj.plan().nak_delay;
                            if nak {
                                self.queue
                                    .push(d.arrival + delay, Event::Retransmit { req, seq });
                            }
                            return Ok(());
                        }
                        PacketFate::Drop => {
                            // Lost in flight: the wire was consumed, and
                            // the receiver's sequence-gap NAK (or the
                            // end-to-end timeout) detects the hole.
                            let d = self.fabric.transmit(wire, src, dst, t);
                            self.mark_faulted(req, seq, 2);
                            let inj = self.injector.as_mut().expect("armed");
                            inj.stats.packet_drop.detected += 1;
                            let nak = inj.plan().nak_retransmit;
                            let delay = inj.plan().nak_delay;
                            if nak {
                                self.queue
                                    .push(d.arrival + delay, Event::Retransmit { req, seq });
                            }
                            return Ok(());
                        }
                    }
                }
                let d = self.fabric.transmit(wire, src, dst, t);
                self.deliver(src, dst, handler, addr, payload, seq, d, io_req);
            }
            Event::Retransmit { req, seq } => {
                let Some(st) = self.reqs.get(&req) else {
                    return Ok(());
                };
                if st.got.get(seq as usize).copied().unwrap_or(true) {
                    return Ok(()); // delivered in the meantime
                }
                self.retransmit_seq(req, seq, t);
            }
            Event::RequestTimeout { req, attempt } => {
                let max = match self.injector.as_ref() {
                    Some(i) => i.plan().max_retries,
                    None => return Ok(()),
                };
                let Some(st) = self.reqs.get_mut(&req) else {
                    return Ok(());
                };
                if st.attempt != attempt {
                    return Ok(()); // superseded by a newer timer
                }
                if !st.got.is_empty() && st.got.iter().all(|&g| g) {
                    return Ok(()); // fully delivered; completion in flight
                }
                if attempt >= max {
                    return Err(SimError::RetriesExhausted {
                        req: req.0,
                        attempts: attempt + 1,
                    });
                }
                st.attempt += 1;
                st.timeout = st.timeout + st.timeout; // exponential backoff
                let next_attempt = st.attempt;
                let next_at = t + st.timeout;
                let missing: Vec<u32> = st
                    .got
                    .iter()
                    .enumerate()
                    .filter(|&(_, &g)| !g)
                    .map(|(i, _)| i as u32)
                    .collect();
                self.injector.as_mut().expect("armed").stats.timeouts += 1;
                for seq in missing {
                    self.retransmit_seq(req, seq, t);
                }
                self.queue.push(
                    next_at,
                    Event::RequestTimeout {
                        req,
                        attempt: next_attempt,
                    },
                );
            }
            Event::CompletionNotice { tca, host, req } => {
                let wire = HEADER_BYTES as u64;
                let d = self.fabric.transmit(wire, tca, host, t);
                self.queue.push(d.arrival, Event::IoComplete { host, req });
            }
            Event::IoComplete { host, req } => {
                let st = self.reqs.remove(&req).expect("live request");
                self.flows.remove(&req);
                // Completion-side OS cost: the interrupt/copy share, plus
                // the per-KB cost — only for data that landed in host
                // memory (active completions are consumed by polling).
                let (per_req, per_kb) = if matches!(st.dest, Dest::HostBuf { .. }) {
                    (
                        self.cfg.os.per_request / 2,
                        SimDuration::from_ns_f64(
                            st.bytes as f64 * self.cfg.os.per_kb_ns as f64 / 1024.0,
                        ),
                    )
                } else {
                    (SimDuration::ZERO, SimDuration::ZERO)
                };
                {
                    let node = self.hosts.get_mut(&host).expect("host exists");
                    Self::advance_host(node, t);
                    node.cpu.charge_fixed_busy(per_req + per_kb);
                }
                let at = self.hosts[&host].cpu.now();
                self.call_host(host, at, Some(req), None);
            }
        }
        Ok(())
    }

    /// Notes a transparently recovered fault of category `cat`
    /// (1 = corrupt, 2 = drop): the faulted packet's data has now
    /// arrived via retransmission.
    fn note_recovered(&mut self, cat: u8) {
        if let Some(inj) = self.injector.as_mut() {
            match cat {
                1 => inj.stats.packet_corrupt.recovered += 1,
                2 => inj.stats.packet_drop.recovered += 1,
                _ => {}
            }
        }
    }

    /// Records the first fault category seen for `seq` of `req`, for
    /// recovery attribution.
    fn mark_faulted(&mut self, req: ReqId, seq: u32, cat: u8) {
        if let Some(st) = self.reqs.get_mut(&req) {
            if let Some(f) = st.faulted.get_mut(seq as usize) {
                if *f == 0 {
                    *f = cat;
                }
            }
        }
    }

    /// Decides the fate of one disk request attempt. `Ok(Some(delay))`
    /// means the attempt soft-errored (controller CRC caught it) and
    /// must be retried after `delay`; `Ok(None)` means proceed now.
    fn disk_attempt(
        &mut self,
        tca: NodeId,
        label: u64,
        attempt: u32,
    ) -> Result<Option<SimDuration>, SimError> {
        let fate = match self.injector.as_mut() {
            Some(inj) => inj.disk_fate(),
            None => return Ok(None),
        };
        match fate {
            DiskFate::Ok => {
                if attempt > 0 {
                    self.injector.as_mut().expect("armed").stats.disk_error.recovered += 1;
                }
                Ok(None)
            }
            DiskFate::Error => {
                let inj = self.injector.as_mut().expect("armed");
                inj.stats.disk_error.detected += 1;
                if attempt >= inj.plan().max_retries {
                    return Err(SimError::RetriesExhausted {
                        req: label,
                        attempts: attempt + 1,
                    });
                }
                Ok(Some(inj.plan().disk_retry_delay))
            }
            DiskFate::Spike => {
                // The request completes, but the disk pays a full
                // mechanical reposition first.
                let inj = self.injector.as_mut().expect("armed");
                inj.stats.disk_latency.detected += 1;
                inj.stats.disk_latency.degraded += 1;
                self.tcas
                    .get_mut(&tca)
                    .expect("tca exists")
                    .storage
                    .force_seek_next();
                Ok(None)
            }
        }
    }

    /// One mapped storage data packet arrived at an active engine under
    /// a fault plan: dedup, recovery accounting, in-order release
    /// through the reorder buffer, and completion detection.
    fn mapped_arrival(&mut self, req: ReqId, sw: NodeId, pkt: asan_net::Packet, t: SimTime) {
        let seq = pkt.header.seq as usize;
        let Some(st) = self.reqs.get_mut(&req) else {
            return; // late duplicate after completion
        };
        if st.got[seq] {
            return; // duplicate delivery
        }
        st.got[seq] = true;
        let cat = std::mem::take(&mut st.faulted[seq]);
        let all = st.got.iter().all(|&g| g);
        let (host, tca) = (st.host, st.tca);
        self.note_recovered(cat);
        let flow = self.flows.entry(req).or_default();
        flow.buffered.insert(pkt.header.seq, pkt);
        let mut release = Vec::new();
        while let Some(p) = flow.buffered.remove(&flow.next_seq) {
            flow.next_seq += 1;
            release.push(p);
        }
        for p in release {
            // Store-and-forward under faults: the whole payload is
            // present by the time the handler runs.
            self.dispatch_active(sw, &p, t, t, t);
        }
        if all {
            self.flows.remove(&req);
            self.queue.push(t, Event::CompletionNotice { tca, host, req });
        }
    }

    /// Dispatches one active packet on the engine at `sw`, first
    /// consulting the injector's handler-trap schedule. A trapped
    /// handler is disabled in the switch's jump table and migrated —
    /// with its accumulated state — to a software engine on the
    /// fallback host; the stream's packets then cross the fabric to
    /// that host (graceful degradation: slower, still correct).
    fn dispatch_active(
        &mut self,
        sw: NodeId,
        pkt: &asan_net::Packet,
        t: SimTime,
        payload_start: SimTime,
        payload_end: SimTime,
    ) {
        if self.injector.is_some() {
            if let Some(hid) = pkt.header.handler {
                if self.trapped.contains(&(sw, hid)) {
                    self.forward_to_fallback(sw, pkt.clone(), t);
                    return;
                }
                let installed = self
                    .switches
                    .get(&sw)
                    .or_else(|| self.active_tcas.get(&sw))
                    .is_some_and(|e| e.has_handler(hid));
                if installed
                    && self
                        .injector
                        .as_mut()
                        .expect("armed")
                        .should_trap(sw.0, hid.as_u8())
                {
                    let handler = self
                        .switches
                        .get_mut(&sw)
                        .or_else(|| self.active_tcas.get_mut(&sw))
                        .and_then(|e| e.take_handler(hid))
                        .expect("trapped handler installed");
                    if !self.fallback_engines.contains_key(&sw) {
                        // Software demultiplexing on a host CPU: one
                        // engine, slower dispatch, same handler model.
                        let mut fcfg = self.cfg.active.clone();
                        fcfg.cpu = self.cfg.host_cpu.clone();
                        fcfg.num_cpus = 1;
                        fcfg.dispatch_cycles = 64;
                        self.fallback_engines
                            .insert(sw, ActiveSwitch::new(sw, fcfg));
                    }
                    self.fallback_engines
                        .get_mut(&sw)
                        .expect("just inserted")
                        .register(hid, handler);
                    self.trapped.insert((sw, hid));
                    self.injector
                        .as_mut()
                        .expect("armed")
                        .stats
                        .handler_trap
                        .degraded += 1;
                    self.forward_to_fallback(sw, pkt.clone(), t);
                    return;
                }
            }
        }
        let engine = self
            .switches
            .get_mut(&sw)
            .or_else(|| self.active_tcas.get_mut(&sw))
            .expect("active engine exists");
        let result = engine.dispatch(pkt, t, payload_start, payload_end);
        self.apply_dispatch_result(sw, sw, pkt.header.seq, result);
    }

    /// Forwards a packet for a trapped handler from its switch to the
    /// fallback host over the fabric (the measurable cost of
    /// degradation): one extra wire crossing plus the OS software-demux
    /// cost of receiving a packet the switch hardware no longer handles.
    fn forward_to_fallback(&mut self, sw: NodeId, pkt: asan_net::Packet, t: SimTime) {
        let fb = self.fallback_host.expect("fault plan requires a host");
        let d = self.fabric.transmit(pkt.wire_bytes(), sw, fb, t);
        let demux = self.cfg.os.per_request;
        self.queue
            .push(d.arrival + demux, Event::FallbackDispatch { sw, pkt });
    }

    /// Applies a dispatch result: transmits the handler's output
    /// messages and forwards its disk requests. `origin` names the
    /// logical engine in delivered messages; `from` is the node the
    /// bytes physically leave (these differ under host fallback).
    fn apply_dispatch_result(
        &mut self,
        origin: NodeId,
        from: NodeId,
        seq: u32,
        result: DispatchResult,
    ) {
        for m in result.outbox {
            let d = if m.dst == from {
                // Output for the very node the engine runs on: local.
                asan_net::Delivery {
                    header_at: m.ready,
                    payload_start: m.ready,
                    arrival: m.ready,
                    hops: 0,
                }
            } else {
                let wire = (m.data.len() + HEADER_BYTES) as u64;
                self.fabric.transmit(wire, from, m.dst, m.ready)
            };
            self.deliver(origin, m.dst, m.handler, m.addr, m.data, seq, d, None);
        }
        for r in result.io_reqs {
            if r.tca == from {
                // An active TCA requesting its own disks: the request
                // never leaves the node.
                self.queue.push(r.ready, Event::SwitchIoAtTca { r, attempt: 0 });
            } else {
                let wire = (HEADER_BYTES * 2) as u64;
                let d = self.fabric.transmit(wire, from, r.tca, r.ready);
                self.queue
                    .push(d.arrival, Event::SwitchIoAtTca { r, attempt: 0 });
            }
        }
    }

    /// Re-injects packet `seq` of `req` from its TCA. The TCA keeps a
    /// request's transmitted stripes in its buffer cache until the
    /// request completes, so a retransmission is a memory re-read, not
    /// a disk I/O — it pays only wire time (plus the NAK/timeout delay
    /// that scheduled it), and it passes through fault injection again.
    fn retransmit_seq(&mut self, req: ReqId, seq: u32, now: SimTime) {
        let st = &self.reqs[&req];
        let (dst, handler, base_addr) = match st.dest {
            Dest::HostBuf { addr } => (st.host, None, addr as u32),
            Dest::Mapped {
                node,
                handler,
                base_addr,
            } => (node, Some(handler), base_addr),
        };
        let prefix: u64 = st.lens[..seq as usize].iter().map(|&l| l as u64).sum();
        let start = st.offset as usize + prefix as usize;
        let plen = st.lens[seq as usize] as usize;
        let payload = self.files_data[st.file.0][start..start + plen].to_vec();
        let src = st.tca;
        self.injector.as_mut().expect("armed").stats.retransmits += 1;
        self.queue.push(
            now,
            Event::InjectIoPacket {
                src,
                dst,
                handler,
                addr: base_addr.wrapping_add(seq.wrapping_mul(MTU as u32)),
                payload,
                seq,
                io_req: Some(req),
            },
        );
    }

    /// Advances `node`'s CPU to `at`, letting any co-scheduled
    /// background job consume the gap as busy time before the rest is
    /// filed as idle.
    fn advance_host(node: &mut HostNode, at: SimTime) {
        if at <= node.cpu.now() {
            return;
        }
        if node.background_left > SimDuration::ZERO {
            let gap = at.since(node.cpu.now());
            let take = gap.min(node.background_left);
            node.cpu.busy_until(node.cpu.now() + take);
            node.background_left -= take;
            if node.background_left == SimDuration::ZERO {
                node.background_done = Some(node.cpu.now());
            }
        }
        node.cpu.idle_until(at);
    }

    /// Invokes a host program hook. `io` = completed request;
    /// `msg` = arrived message; neither = start.
    fn call_host(&mut self, host: NodeId, at: SimTime, io: Option<ReqId>, msg: Option<HostMsg>) {
        let node = self.hosts.get_mut(&host).expect("host exists");
        if node.finished_at.is_some() {
            // Finished programs ignore late traffic (e.g. trailing
            // completion notifications).
            return;
        }
        let mut program = match node.program.take() {
            Some(p) => p,
            None => return,
        };
        Self::advance_host(node, at);
        if msg.is_some() {
            // Poll + consume the completion.
            let instr = node.hca.config().recv_instr;
            node.cpu.compute(instr);
        }
        let mut ctx = HostCtx {
            cpu: &mut node.cpu,
            hca: &mut node.hca,
            node: host,
            os: self.cfg.os,
            files: &self.files_meta,
            next_req: &mut self.next_req,
            effects: Vec::new(),
        };
        match (io, &msg) {
            (Some(req), _) => program.on_io_complete(&mut ctx, req),
            (None, Some(m)) => program.on_message(&mut ctx, m),
            (None, None) => program.on_start(&mut ctx),
        }
        let effects = std::mem::take(&mut ctx.effects);
        self.hosts.get_mut(&host).expect("host exists").program = Some(program);
        self.apply_effects(host, effects);
    }

    fn apply_effects(&mut self, host: NodeId, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Io {
                    req,
                    file,
                    offset,
                    len,
                    dest,
                    issue_at,
                } => {
                    let tca = self.files_meta[file.0].tca;
                    let wire = (HEADER_BYTES * 2) as u64;
                    let d = self.fabric.transmit(wire, host, tca, issue_at);
                    let timeout = self
                        .injector
                        .as_ref()
                        .map_or(SimDuration::ZERO, |i| i.plan().request_timeout);
                    self.reqs.insert(
                        req,
                        IoState {
                            host,
                            dest,
                            remaining: usize::MAX, // set when the read starts
                            bytes: len,
                            tca,
                            file,
                            offset,
                            got: Vec::new(),
                            lens: Vec::new(),
                            faulted: Vec::new(),
                            attempt: 0,
                            timeout,
                        },
                    );
                    self.queue.push(
                        d.arrival,
                        Event::IoRequestAtTca {
                            tca,
                            req,
                            file,
                            offset,
                            len,
                            dest,
                            attempt: 0,
                        },
                    );
                    // The end-to-end timeout only guards flows whose
                    // data actually crosses the fabric (and can
                    // therefore be dropped): local active-disk
                    // deliveries are reliable by construction.
                    let faultable = self.injector.is_some()
                        && match dest {
                            Dest::HostBuf { .. } => true,
                            Dest::Mapped { node, .. } => node != tca,
                        };
                    if faultable {
                        self.queue
                            .push(issue_at + timeout, Event::RequestTimeout { req, attempt: 0 });
                    }
                }
                Effect::Send {
                    dst,
                    handler,
                    addr,
                    data,
                    ready,
                } => {
                    self.hosts
                        .get_mut(&host)
                        .expect("host exists")
                        .payload
                        .record_out(data.len() as u64);
                    // Packetize; each packet is its own fabric transfer.
                    let chunks: Vec<(usize, usize)> = if data.is_empty() {
                        vec![(0, 0)]
                    } else {
                        (0..data.len())
                            .step_by(MTU)
                            .map(|o| (o, (data.len() - o).min(MTU)))
                            .collect()
                    };
                    for (i, (off, clen)) in chunks.into_iter().enumerate() {
                        let payload = data[off..off + clen].to_vec();
                        let wire = (clen + HEADER_BYTES) as u64;
                        let d = self.fabric.transmit(wire, host, dst, ready);
                        self.deliver(
                            host,
                            dst,
                            handler,
                            addr.wrapping_add(off as u32),
                            payload,
                            i as u32,
                            d,
                            None,
                        );
                    }
                }
                Effect::Finish => {
                    let node = self.hosts.get_mut(&host).expect("host exists");
                    node.finished_at = Some(node.cpu.now());
                }
            }
        }
    }

    /// Schedules the delivery events for one packet already injected
    /// into the fabric.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        handler: Option<HandlerId>,
        addr: u32,
        data: Vec<u8>,
        seq: u32,
        d: asan_net::Delivery,
        io_req: Option<ReqId>,
    ) {
        match self.fabric.kind(dst) {
            NodeKind::Host => {
                self.queue.push(
                    d.arrival,
                    Event::PacketToHost {
                        host: dst,
                        msg: HostMsg {
                            src,
                            handler,
                            addr,
                            data,
                            seq,
                        },
                        io_req,
                    },
                );
            }
            NodeKind::Switch => {
                let h = handler.expect("messages to a switch must be active");
                let len = data.len();
                let pkt = asan_net::Packet::new(
                    asan_net::Header {
                        src,
                        dst,
                        len: len as u16,
                        handler: Some(h),
                        addr,
                        seq,
                    },
                    data,
                );
                if io_req.is_some() {
                    // Faultable storage data: the engine store-and-
                    // forwards (full payload verified by ICRC before
                    // dispatch), so everything happens at arrival.
                    self.queue.push(
                        d.arrival,
                        Event::PacketToSwitch {
                            sw: dst,
                            pkt,
                            payload_start: d.arrival,
                            payload_end: d.arrival,
                            io_req,
                        },
                    );
                } else {
                    self.queue.push(
                        d.header_at,
                        Event::PacketToSwitch {
                            sw: dst,
                            pkt,
                            payload_start: d.payload_start,
                            payload_end: d.arrival,
                            io_req: None,
                        },
                    );
                }
            }
            NodeKind::Tca => {
                if let Some(h) = handler.filter(|_| self.active_tcas.contains_key(&dst)) {
                    let len = data.len();
                    let pkt = asan_net::Packet::new(
                        asan_net::Header {
                            src,
                            dst,
                            len: len as u16,
                            handler: Some(h),
                            addr,
                            seq,
                        },
                        data,
                    );
                    if io_req.is_some() {
                        self.queue.push(
                            d.arrival,
                            Event::PacketToSwitch {
                                sw: dst,
                                pkt,
                                payload_start: d.arrival,
                                payload_end: d.arrival,
                                io_req,
                            },
                        );
                    } else {
                        self.queue.push(
                            d.header_at,
                            Event::PacketToSwitch {
                                sw: dst,
                                pkt,
                                payload_start: d.payload_start,
                                payload_end: d.arrival,
                                io_req: None,
                            },
                        );
                    }
                } else {
                    self.queue.push(
                        d.arrival,
                        Event::PacketToTca {
                            tca: dst,
                            bytes: data.len() as u64,
                        },
                    );
                }
            }
        }
    }

    /// Starts a host-requested storage read at its TCA.
    #[allow(clippy::too_many_arguments)]
    fn start_storage_read(
        &mut self,
        tca: NodeId,
        req: ReqId,
        file: FileId,
        offset: u64,
        len: u64,
        dest: Dest,
        now: SimTime,
    ) {
        let meta = self.files_meta[file.0];
        let sched = {
            let node = self.tcas.get_mut(&tca).expect("tca exists");
            node.storage
                .read_stream(meta.disk_offset + offset, len, now)
        };
        let host = self.reqs[&req].host;
        let (dst, handler, base_addr) = match dest {
            Dest::HostBuf { addr } => (host, None, addr as u32),
            Dest::Mapped {
                node,
                handler,
                base_addr,
            } => (node, Some(handler), base_addr),
        };
        let track_packets = matches!(dest, Dest::HostBuf { .. });
        // Under an armed fault plan every fabric-crossing data packet is
        // tracked per sequence number, so drops/corruption can be
        // detected, retransmitted, and the request completed exactly
        // once.
        let faulted_path = self.injector.is_some() && dst != tca;
        if track_packets || faulted_path {
            if let Some(st) = self.reqs.get_mut(&req) {
                st.remaining = sched.len();
                if faulted_path {
                    st.got = vec![false; sched.len()];
                    st.faulted = vec![0; sched.len()];
                    st.lens = sched.packet_len.clone();
                }
            }
        }
        let mut cursor = offset as usize;
        for (i, (&ready, &plen)) in sched
            .packet_ready
            .iter()
            .zip(sched.packet_len.iter())
            .enumerate()
        {
            let plen = plen as usize;
            let payload = self.files_data[file.0][cursor..cursor + plen].to_vec();
            cursor += plen;
            if dst == tca {
                // Mapped to the TCA's own active engine (an active
                // disk): no fabric traversal — the buffer fills as the
                // bus delivers.
                let h = handler.expect("local TCA delivery is active");
                let pkt = asan_net::Packet::new(
                    asan_net::Header {
                        src: tca,
                        dst,
                        len: plen as u16,
                        handler: Some(h),
                        addr: base_addr.wrapping_add((i * MTU) as u32),
                        seq: i as u32,
                    },
                    payload,
                );
                let window = SimDuration::transfer(plen as u64, 320_000_000);
                self.queue.push(
                    ready,
                    Event::PacketToSwitch {
                        sw: tca,
                        pkt,
                        payload_start: ready - window.min(SimDuration::from_ps(ready.as_ps())),
                        payload_end: ready,
                        io_req: None,
                    },
                );
                continue;
            }
            self.queue.push(
                ready,
                Event::InjectIoPacket {
                    src: tca,
                    dst,
                    handler,
                    addr: base_addr.wrapping_add((i * MTU) as u32),
                    payload,
                    seq: i as u32,
                    io_req: (track_packets || faulted_path).then_some(req),
                },
            );
        }
        // For mapped (active) destinations, the host still needs its
        // completion notification: a small message from the TCA once the
        // last data packet has been injected. Deferred via an event so
        // the link sees it in causal order. Under a fault plan the
        // notice instead fires when the last data packet actually
        // arrives (handled in `mapped_arrival`).
        if !track_packets && !faulted_path {
            let last_ready = *sched.packet_ready.last().expect("non-empty read");
            self.queue
                .push(last_ready, Event::CompletionNotice { tca, host, req });
        }
    }

    /// Starts a switch-initiated storage read (Tar): stream a file
    /// region to any node without host involvement.
    fn start_switch_read(&mut self, r: &SwitchIoReq, now: SimTime) {
        let meta = self.files_meta[r.file];
        assert_eq!(meta.tca, r.tca, "file lives on a different TCA");
        let sched = {
            let node = self.tcas.get_mut(&r.tca).expect("tca exists");
            node.storage
                .read_stream(meta.disk_offset + r.offset, r.len, now)
        };
        let mut cursor = r.offset as usize;
        for (i, (&ready, &plen)) in sched
            .packet_ready
            .iter()
            .zip(sched.packet_len.iter())
            .enumerate()
        {
            let plen = plen as usize;
            let payload = self.files_data[r.file][cursor..cursor + plen].to_vec();
            cursor += plen;
            self.queue.push(
                ready,
                Event::InjectIoPacket {
                    src: r.tca,
                    dst: r.deliver_to,
                    handler: r.deliver_handler,
                    addr: r.deliver_addr.wrapping_add((i * MTU) as u32),
                    payload,
                    seq: i as u32,
                    io_req: None,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::HandlerCtx;
    use asan_net::topo::SwitchSpec;
    use asan_net::LinkConfig;

    fn single_switch(
        hosts: usize,
        tcas: usize,
    ) -> (TopologyBuilder, Vec<NodeId>, Vec<NodeId>, NodeId) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SwitchSpec::paper());
        let hs: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
        let ts: Vec<NodeId> = (0..tcas).map(|_| b.add_tca()).collect();
        for &h in &hs {
            b.connect(h, sw, LinkConfig::paper());
        }
        for &t in &ts {
            b.connect(t, sw, LinkConfig::paper());
        }
        (b, hs, ts, sw)
    }

    /// Reads one block and finishes.
    struct OneRead {
        file: FileId,
        bytes_seen: u64,
    }

    impl HostProgram for OneRead {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.read_file(self.file, 0, 64 * 1024, Dest::HostBuf { addr: 0x1000_0000 });
        }
        fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
            // Scan the freshly DMA'd block: 64 KB of cold lines.
            ctx.cpu().touch_lines(0x1000_0000, 64 * 1024, 2, false);
            self.bytes_seen += 64 * 1024;
            ctx.finish();
        }
    }

    #[test]
    fn normal_read_flows_end_to_end() {
        let (topo, hs, ts, _) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let data = vec![0x5A; 64 * 1024];
        let file = cl.add_file(ts[0], data).unwrap();
        cl.set_program(
            hs[0],
            Box::new(OneRead {
                file,
                bytes_seen: 0,
            }),
        ).unwrap();
        let r = cl.run().unwrap();
        // Sequential read from parked heads: ~0.66 ms transfer plus
        // request/OS/network overheads.
        let ms = r.finish.as_secs_f64() * 1e3;
        assert!((0.6..2.5).contains(&ms), "finish = {ms} ms");
        // All 64 KB arrived at the host.
        assert_eq!(r.host(hs[0]).unwrap().payload.bytes_in, 64 * 1024);
        // Host was mostly idle (I/O wait dominates).
        assert!(r.host(hs[0]).unwrap().breakdown.utilization() < 0.2);
    }

    /// Counts matching bytes in the switch, sends only the count home.
    struct CountHandler {
        needle: u8,
        host: NodeId,
        count: u64,
        total: u64,
        expect: u64,
    }

    impl Handler for CountHandler {
        fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
            let data = ctx.payload();
            ctx.charge_stream(data.len(), 2);
            self.count += data.iter().filter(|&&b| b == self.needle).count() as u64;
            self.total += data.len() as u64;
            if self.total >= self.expect {
                ctx.send(self.host, None, 0, &self.count.to_le_bytes());
            }
        }
    }

    /// Issues an active read and waits for the handler's result message.
    struct ActiveCount {
        file: FileId,
        sw: NodeId,
        result: Option<u64>,
    }

    impl HostProgram for ActiveCount {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let len = ctx.file_len(self.file);
            ctx.read_file(
                self.file,
                0,
                len,
                Dest::Mapped {
                    node: self.sw,
                    handler: HandlerId::new(1),
                    base_addr: 0,
                },
            );
        }
        fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
            self.result = Some(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
            ctx.finish();
        }
    }

    #[test]
    fn active_read_invokes_handler_and_filters_traffic() {
        let (topo, hs, ts, sw) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        // 64 KB where every 64th byte is 0x7F.
        let data: Vec<u8> = (0..64 * 1024u32)
            .map(|i| if i % 64 == 0 { 0x7F } else { 0 })
            .collect();
        let _expect_matches = (64 * 1024 / 64) as u64;
        let file = cl.add_file(ts[0], data).unwrap();
        cl.register_handler(
            sw,
            HandlerId::new(1),
            Box::new(CountHandler {
                needle: 0x7F,
                host: hs[0],
                count: 0,
                total: 0,
                expect: 64 * 1024,
            }),
        ).unwrap();
        cl.set_program(
            hs[0],
            Box::new(ActiveCount {
                file,
                sw,
                result: None,
            }),
        ).unwrap();
        let r = cl.run().unwrap();
        // The handler computed the real answer.
        // (Retrieve via the switch stats and the program's own state is
        // gone; check through traffic instead.)
        assert_eq!(r.switch(sw).unwrap().bytes_in, 64 * 1024);
        // Only the 8-byte count (plus the completion header) reached the
        // host: traffic reduced by ~8000x.
        assert!(r.host(hs[0]).unwrap().payload.bytes_in <= 16);
        // The switch CPU did the work.
        assert_eq!(r.switch(sw).unwrap().invocations, 128);
    }

    /// Two hosts exchange a message.
    struct Pinger {
        peer: NodeId,
    }
    impl HostProgram for Pinger {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.send(self.peer, None, 0, vec![1u8; 100]);
            ctx.finish();
        }
    }
    struct Ponger {
        got: usize,
    }
    impl HostProgram for Ponger {
        fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}
        fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
            self.got += msg.data.len();
            ctx.finish();
        }
    }

    #[test]
    fn host_to_host_messaging() {
        let (topo, hs, _, _) = single_switch(2, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        cl.set_program(hs[0], Box::new(Pinger { peer: hs[1] })).unwrap();
        cl.set_program(hs[1], Box::new(Ponger { got: 0 })).unwrap();
        let r = cl.run().unwrap();
        assert_eq!(r.host(hs[0]).unwrap().payload.bytes_out, 100);
        assert_eq!(r.host(hs[1]).unwrap().payload.bytes_in, 100);
        // Message latency: HCA software + adapter latency both ways +
        // 2 hops + routing ≈ under ten microseconds.
        assert!(r.finish.as_ns() < 15_000, "finish = {}", r.finish);
    }

    #[test]
    fn non_active_traffic_unaffected_by_busy_switch_cpu() {
        // Ping-pong latency with and without a storming active flow from
        // another host must be identical up to link contention on
        // disjoint ports — the active hardware is off the datapath.
        let (topo, hs, _, _sw) = single_switch(3, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        cl.set_program(hs[0], Box::new(Pinger { peer: hs[1] })).unwrap();
        cl.set_program(hs[1], Box::new(Ponger { got: 0 })).unwrap();
        let r = cl.run().unwrap();
        let t_quiet = r.host(hs[1]).unwrap().finished_at;

        // Same again, but host 2 hammers the switch CPU with actives.
        struct Storm {
            sw: NodeId,
        }
        impl HostProgram for Storm {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                for i in 0..20u32 {
                    ctx.send(self.sw, Some(HandlerId::new(9)), i * 512, vec![0; 512]);
                }
                ctx.finish();
            }
        }
        struct Burn;
        impl Handler for Burn {
            fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
                ctx.compute(100_000);
            }
        }
        let (topo2, hs2, _, sw2) = single_switch(3, 1);
        let mut cl2 = Cluster::new(topo2, ClusterConfig::paper());
        cl2.register_handler(sw2, HandlerId::new(9), Box::new(Burn)).unwrap();
        cl2.set_program(hs2[0], Box::new(Pinger { peer: hs2[1] })).unwrap();
        cl2.set_program(hs2[1], Box::new(Ponger { got: 0 })).unwrap();
        cl2.set_program(hs2[2], Box::new(Storm { sw: sw2 })).unwrap();
        let r2 = cl2.run().unwrap();
        let t_stormy = r2.host(hs2[1]).unwrap().finished_at;
        assert_eq!(t_quiet, t_stormy, "active load perturbed non-active path");
    }

    #[test]
    fn prefetch_two_outstanding_overlaps_io() {
        // Reading 8 blocks serially vs with 2 outstanding requests: the
        // prefetched run must be faster.
        struct Serial {
            file: FileId,
            next: u64,
            blocks: u64,
        }
        impl HostProgram for Serial {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.read_file(self.file, 0, 65536, Dest::HostBuf { addr: 0x1000_0000 });
                self.next = 1;
            }
            fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
                ctx.cpu().touch_lines(0x1000_0000, 65536, 4, false);
                if self.next < self.blocks {
                    ctx.read_file(
                        self.file,
                        self.next * 65536,
                        65536,
                        Dest::HostBuf { addr: 0x1000_0000 },
                    );
                    self.next += 1;
                } else {
                    ctx.finish();
                }
            }
        }
        struct Pref {
            file: FileId,
            issued: u64,
            done: u64,
            blocks: u64,
        }
        impl HostProgram for Pref {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                for i in 0..2.min(self.blocks) {
                    ctx.read_file(
                        self.file,
                        i * 65536,
                        65536,
                        Dest::HostBuf { addr: 0x1000_0000 },
                    );
                    self.issued += 1;
                }
            }
            fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
                ctx.cpu().touch_lines(0x1000_0000, 65536, 4, false);
                self.done += 1;
                if self.issued < self.blocks {
                    ctx.read_file(
                        self.file,
                        self.issued * 65536,
                        65536,
                        Dest::HostBuf { addr: 0x1000_0000 },
                    );
                    self.issued += 1;
                } else if self.done == self.blocks {
                    ctx.finish();
                }
            }
        }
        let mk = |prog: bool| {
            let (topo, hs, ts, _) = single_switch(1, 1);
            let mut cl = Cluster::new(topo, ClusterConfig::paper());
            let file = cl.add_file(ts[0], vec![7; 8 * 65536]).unwrap();
            if prog {
                cl.set_program(
                    hs[0],
                    Box::new(Pref {
                        file,
                        issued: 0,
                        done: 0,
                        blocks: 8,
                    }),
                ).unwrap();
            } else {
                cl.set_program(
                    hs[0],
                    Box::new(Serial {
                        file,
                        next: 0,
                        blocks: 8,
                    }),
                ).unwrap();
            }
            cl.run().unwrap().finish
        };
        let serial = mk(false);
        let pref = mk(true);
        assert!(
            pref < serial,
            "prefetch ({pref}) should beat serial ({serial})"
        );
    }

    #[test]
    fn active_tca_filters_before_the_network() {
        // The same counting handler, but installed on the TCA: the SAN
        // only ever carries the handler's output.
        let (topo, hs, ts, _sw) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let data: Vec<u8> = (0..32 * 1024u32)
            .map(|i| if i % 64 == 0 { 0x7F } else { 0 })
            .collect();
        let file = cl.add_file(ts[0], data).unwrap();
        cl.enable_active_tca(ts[0], crate::active::ActiveSwitchConfig::paper()).unwrap();
        cl.register_tca_handler(
            ts[0],
            HandlerId::new(1),
            Box::new(CountHandler {
                needle: 0x7F,
                host: hs[0],
                count: 0,
                total: 0,
                expect: 32 * 1024,
            }),
        ).unwrap();
        cl.set_program(
            hs[0],
            Box::new(ActiveCount {
                file,
                sw: ts[0], // mapped straight to the TCA's own engine
                result: None,
            }),
        ).unwrap();
        let r = cl.run().unwrap();
        // Only the 8-byte count crossed the fabric toward the host.
        assert!(r.host(hs[0]).unwrap().payload.bytes_in <= 16);
        // The raw 32 KB never entered the SAN: link bytes are tiny.
        assert!(
            r.link_bytes < 4096,
            "SAN carried {} B despite disk-side filtering",
            r.link_bytes
        );
    }

    #[test]
    fn background_job_consumes_idle_time() {
        let (topo, hs, ts, _) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let file = cl.add_file(ts[0], vec![0x5A; 64 * 1024]).unwrap();
        cl.set_program(
            hs[0],
            Box::new(OneRead {
                file,
                bytes_seen: 0,
            }),
        ).unwrap();
        // A 100 us job fits easily inside the ~700 us of I/O wait.
        cl.set_background_job(hs[0], SimDuration::from_us(100)).unwrap();
        let r = cl.run().unwrap();
        let h = r.host(hs[0]).unwrap();
        assert!(h.background_done.is_some(), "job did not finish");
        assert!(h.background_done.unwrap() <= h.finished_at);
        assert_eq!(h.background_left, SimDuration::ZERO);
        // The job's time shows up as busy, not idle.
        assert!(h.breakdown.busy >= SimDuration::from_us(100));
    }

    #[test]
    fn stats_snapshot_counts_real_work() {
        let (topo, hs, ts, sw) = single_switch(1, 1);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let file = cl.add_file(ts[0], vec![0x11; 64 * 1024]).unwrap();
        cl.register_handler(
            sw,
            HandlerId::new(1),
            Box::new(CountHandler {
                needle: 0x11,
                host: hs[0],
                count: 0,
                total: 0,
                expect: 64 * 1024,
            }),
        ).unwrap();
        cl.set_program(
            hs[0],
            Box::new(ActiveCount {
                file,
                sw,
                result: None,
            }),
        ).unwrap();
        cl.run().unwrap();
        let st = cl.stats();
        assert_eq!(st.switches.len(), 1);
        assert_eq!(st.switches[0].invocations, 128);
        assert_eq!(st.switches[0].bytes_in, 64 * 1024);
        assert!(st.switches[0].atb_hits > 0);
        assert_eq!(st.storage.len(), 1);
        assert_eq!(
            st.storage[0].disk_bytes.iter().sum::<u64>(),
            64 * 1024,
            "disks served the whole file"
        );
        assert!(st.fabric.link_bytes > 64 * 1024);
        assert!(st.events > 0);
        // Display renders without panicking and mentions the switch.
        assert!(st.to_string().contains("invocations"));
    }

    #[test]
    fn tar_style_switch_initiated_read_bypasses_host() {
        // A handler that, on a trigger message, pulls a file from the
        // TCA straight to an archive TCA.
        struct TarHandler {
            tca: NodeId,
            archive: NodeId,
            file: usize,
            len: u64,
        }
        impl Handler for TarHandler {
            fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
                let _ = ctx.payload();
                ctx.request_disk_read(self.tca, self.file, 0, self.len, self.archive, None, 0);
            }
        }
        struct Trigger {
            sw: NodeId,
        }
        impl HostProgram for Trigger {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.send(self.sw, Some(HandlerId::new(2)), 0, vec![0u8; 64]);
                ctx.finish();
            }
        }
        let (topo, hs, ts, sw) = single_switch(1, 2);
        let mut cl = Cluster::new(topo, ClusterConfig::paper());
        let file = cl.add_file(ts[0], vec![9u8; 256 * 1024]).unwrap();
        cl.register_handler(
            sw,
            HandlerId::new(2),
            Box::new(TarHandler {
                tca: ts[0],
                archive: ts[1],
                file: file.0,
                len: 256 * 1024,
            }),
        ).unwrap();
        cl.set_program(hs[0], Box::new(Trigger { sw })).unwrap();
        let r = cl.run().unwrap();
        // Host saw only its trigger message out; the 256 KB went
        // disk → switch-request → disk → archive without touching it.
        assert_eq!(r.host(hs[0]).unwrap().payload.bytes_in, 0);
        assert_eq!(r.host(hs[0]).unwrap().payload.bytes_out, 64);
        // The drain time includes the archive write completing.
        assert!(r.drain > r.finish);
    }
}
