//! Known-bad: the silent `_ => {}` arm swallows any Event variant a
//! future PR adds — the engine just drops it and digests drift.

impl Engine for DemoEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::Start(node) => self.start(node, t, bus),
            Event::IoComplete { host, req } => self.complete(host, req),
            _ => {}
        }
        Ok(())
    }
}
