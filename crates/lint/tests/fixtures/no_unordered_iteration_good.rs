//! Corrected twin: a BTreeMap iterates in key order, so the fold is
//! identical on every machine.

use std::collections::BTreeMap;

pub fn total_latency(per_node: &BTreeMap<u16, u64>) -> u64 {
    let mut acc = 0u64;
    for (_node, ns) in per_node.iter() {
        acc = acc.rotate_left(1) ^ ns;
    }
    acc
}
