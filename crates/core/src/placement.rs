//! Handler placement on multi-switch fabrics.
//!
//! On a single switch there is exactly one place a handler can run. On
//! a [`TopoSpec`](asan_net::TopoSpec)-generated fabric the question of
//! *which* active switch combines a collective becomes a policy: this
//! module turns a [`TopoMap`] plus a participant set into an
//! [`AggregationTree`] — per-switch fan-in, parent edges for forwarding
//! partial results upward, and each host's ingress switch — under one
//! of three [`HandlerPlacement`] policies.
//!
//! Everything here is deterministic: participants are walked in caller
//! order, switches in ascending node-id order (`BTreeMap`/`BTreeSet`),
//! and the [`TopoMap`] itself is a pure function of its spec, so the
//! same spec + participants + policy always yields the same tree
//! (docs/DETERMINISM.md, invariant 9).

use std::collections::{BTreeMap, BTreeSet};

use asan_net::{NodeId, TopoMap};

/// Which active switch(es) a collective's combine handler runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerPlacement {
    /// One handler at the topology root; every participant sends its
    /// contribution all the way up. Maximum fan-in at one switch, no
    /// in-network combining below the apex — the baseline that shows
    /// why hierarchical placement matters.
    Root,
    /// A handler on every switch between the participants and their
    /// nearest common ancestor: each level combines its children's
    /// partials before forwarding one result upward. This is the
    /// paper's §5 reduction tree generalized to any participant set.
    Nca,
    /// Leaf switches combine their local participants, then forward
    /// the per-leaf partials across the fabric to one deterministically
    /// striped aggregator leaf. Trades upper-tree combining for
    /// spreading aggregation load across leaves when many collectives
    /// run concurrently.
    Striped,
}

impl HandlerPlacement {
    /// All policies, in bench-sweep order.
    pub const ALL: [HandlerPlacement; 3] = [
        HandlerPlacement::Root,
        HandlerPlacement::Nca,
        HandlerPlacement::Striped,
    ];

    /// Canonical label for bench/CI naming.
    pub fn label(self) -> &'static str {
        match self {
            HandlerPlacement::Root => "root",
            HandlerPlacement::Nca => "nca",
            HandlerPlacement::Striped => "striped",
        }
    }
}

/// One switch's role in an [`AggregationTree`].
#[derive(Debug, Clone)]
pub struct AggNode {
    /// Contributions this switch combines before emitting one result:
    /// directly-attached participant hosts plus child switches.
    pub expect: usize,
    /// Where the combined partial goes (`None` at the tree root, where
    /// the final result materializes).
    pub parent: Option<NodeId>,
    /// Participant hosts that send directly to this switch, in
    /// participant order.
    pub host_children: Vec<NodeId>,
    /// Child switches that forward partials here, ascending node id.
    pub switch_children: Vec<NodeId>,
}

/// A placed aggregation: which switches run the combine handler, how
/// much each expects, and where each participant injects.
#[derive(Debug, Clone)]
pub struct AggregationTree {
    /// Per-switch roles, keyed by switch id (deterministic iteration).
    pub nodes: BTreeMap<NodeId, AggNode>,
    /// Each participant host's ingress switch (where it sends its
    /// contribution).
    pub ingress: BTreeMap<NodeId, NodeId>,
    /// The switch where the final combined result materializes.
    pub root: NodeId,
}

impl AggregationTree {
    /// Total contributions expected across the tree (diagnostic: equals
    /// participants + internal forwards).
    pub fn total_expect(&self) -> usize {
        self.nodes.values().map(|n| n.expect).sum()
    }
}

/// Builds the aggregation tree for `participants` on `map` under
/// `placement`. See [`HandlerPlacement`] for the policies.
///
/// # Panics
///
/// Panics if `participants` is empty, contains a node that is not a
/// host of `map`, or (for [`HandlerPlacement::Nca`]) if the
/// participants' leaves do not share an apex in `map`'s parent chains.
pub fn aggregation_tree(
    map: &TopoMap,
    participants: &[NodeId],
    placement: HandlerPlacement,
) -> AggregationTree {
    assert!(!participants.is_empty(), "no participants to place");
    let leaf_of: Vec<NodeId> = participants
        .iter()
        .map(|&h| {
            map.leaf_of(h)
                .unwrap_or_else(|| panic!("participant {h} is not a host of this topology"))
        })
        .collect();
    match placement {
        HandlerPlacement::Root => place_root(map, participants),
        HandlerPlacement::Nca => place_nca(map, participants, &leaf_of),
        HandlerPlacement::Striped => place_striped(participants, &leaf_of),
    }
}

fn place_root(map: &TopoMap, participants: &[NodeId]) -> AggregationTree {
    let node = AggNode {
        expect: participants.len(),
        parent: None,
        host_children: participants.to_vec(),
        switch_children: Vec::new(),
    };
    AggregationTree {
        nodes: BTreeMap::from([(map.root, node)]),
        ingress: participants.iter().map(|&h| (h, map.root)).collect(),
        root: map.root,
    }
}

fn place_nca(map: &TopoMap, participants: &[NodeId], leaf_of: &[NodeId]) -> AggregationTree {
    // Chains from each distinct participant leaf to its apex.
    let distinct: BTreeSet<NodeId> = leaf_of.iter().copied().collect();
    let chains: Vec<Vec<NodeId>> = distinct.iter().map(|&l| map.chain_to_root(l)).collect();
    // The nearest common ancestor: the deepest switch shared by every
    // chain, found by walking the common suffix from the apex down.
    let mut depth = 0;
    loop {
        let first = &chains[0];
        if depth >= first.len() {
            break;
        }
        let cand = first[first.len() - 1 - depth];
        if chains
            .iter()
            .all(|c| depth < c.len() && c[c.len() - 1 - depth] == cand)
        {
            depth += 1;
        } else {
            break;
        }
    }
    assert!(depth > 0, "participant leaves share no aggregation apex");
    let first = &chains[0];
    let nca = first[first.len() - depth];
    // Tree switches: every chain's segment from its leaf up to the NCA.
    let mut members: BTreeSet<NodeId> = BTreeSet::new();
    for chain in &chains {
        for &sw in chain {
            members.insert(sw);
            if sw == nca {
                break;
            }
        }
    }
    let mut nodes: BTreeMap<NodeId, AggNode> = members
        .iter()
        .map(|&sw| {
            (
                sw,
                AggNode {
                    expect: 0,
                    parent: if sw == nca {
                        None
                    } else {
                        map.parent.get(&sw).copied()
                    },
                    host_children: Vec::new(),
                    switch_children: Vec::new(),
                },
            )
        })
        .collect();
    for (i, &h) in participants.iter().enumerate() {
        nodes
            .get_mut(&leaf_of[i])
            .expect("participant leaf is a tree member")
            .host_children
            .push(h);
    }
    for &sw in &members {
        let Some(up) = nodes[&sw].parent else {
            continue;
        };
        nodes
            .get_mut(&up)
            .expect("parent is a tree member")
            .switch_children
            .push(sw);
    }
    for node in nodes.values_mut() {
        node.expect = node.host_children.len() + node.switch_children.len();
    }
    AggregationTree {
        ingress: participants
            .iter()
            .zip(leaf_of)
            .map(|(&h, &l)| (h, l))
            .collect(),
        nodes,
        root: nca,
    }
}

fn place_striped(participants: &[NodeId], leaf_of: &[NodeId]) -> AggregationTree {
    let leaves: Vec<NodeId> = leaf_of
        .iter()
        .copied()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Deterministic stripe key: the participant count stands in for a
    // flow hash, so different-sized collectives aggregate on different
    // leaves while any one collective is fully reproducible.
    let agg = leaves[participants.len() % leaves.len()];
    let mut nodes: BTreeMap<NodeId, AggNode> = leaves
        .iter()
        .map(|&l| {
            (
                l,
                AggNode {
                    expect: 0,
                    parent: if l == agg { None } else { Some(agg) },
                    host_children: Vec::new(),
                    switch_children: Vec::new(),
                },
            )
        })
        .collect();
    for (i, &h) in participants.iter().enumerate() {
        nodes
            .get_mut(&leaf_of[i])
            .expect("leaf present")
            .host_children
            .push(h);
    }
    let peers: Vec<NodeId> = leaves.iter().copied().filter(|&l| l != agg).collect();
    let agg_node = nodes.get_mut(&agg).expect("aggregator present");
    agg_node.switch_children = peers;
    for node in nodes.values_mut() {
        node.expect = node.host_children.len() + node.switch_children.len();
    }
    AggregationTree {
        ingress: participants
            .iter()
            .zip(leaf_of)
            .map(|(&h, &l)| (h, l))
            .collect(),
        nodes,
        root: agg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_net::TopoSpec;

    fn fat_tree_map(radix: usize, hosts: usize) -> TopoMap {
        TopoSpec::fat_tree(radix, hosts, 0).build().1
    }

    #[test]
    fn nca_over_all_hosts_matches_the_full_tree() {
        // 32 hosts, radix 16 → 4 leaves + root; full participation puts
        // a handler on every switch with leaf fan-in 8 and root fan-in 4.
        let map = fat_tree_map(16, 32);
        let tree = aggregation_tree(&map, &map.hosts, HandlerPlacement::Nca);
        assert_eq!(tree.nodes.len(), map.switches.len());
        assert_eq!(tree.root, map.root);
        for (&sw, node) in &tree.nodes {
            if sw == map.root {
                assert_eq!(node.expect, 4);
                assert!(node.parent.is_none());
            } else {
                assert_eq!(node.expect, 8);
                assert_eq!(node.parent, Some(map.root));
            }
        }
        assert_eq!(tree.total_expect(), 32 + 4);
        assert_eq!(tree.ingress[&map.hosts[0]], map.host_leaf[0]);
    }

    #[test]
    fn nca_of_a_subset_stops_below_the_root() {
        // Hosts 0..8 share one leaf in a radix-16 tree: the NCA is that
        // leaf, and no upper switch joins the tree.
        let map = fat_tree_map(16, 32);
        let subset: Vec<_> = map.hosts[..8].to_vec();
        let tree = aggregation_tree(&map, &subset, HandlerPlacement::Nca);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.root, map.host_leaf[0]);
        assert_eq!(tree.nodes[&tree.root].expect, 8);
    }

    #[test]
    fn root_placement_funnels_everything_to_the_apex() {
        let map = fat_tree_map(8, 20);
        let tree = aggregation_tree(&map, &map.hosts, HandlerPlacement::Root);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.root, map.root);
        assert_eq!(tree.nodes[&map.root].expect, 20);
        assert!(tree.ingress.values().all(|&sw| sw == map.root));
    }

    #[test]
    fn striped_placement_combines_locally_then_crosses() {
        let map = fat_tree_map(16, 32); // 4 leaves
        let tree = aggregation_tree(&map, &map.hosts, HandlerPlacement::Striped);
        assert_eq!(tree.nodes.len(), 4);
        let agg = tree.root;
        assert_eq!(tree.nodes[&agg].expect, 8 + 3);
        for (&sw, node) in &tree.nodes {
            if sw != agg {
                assert_eq!(node.expect, 8);
                assert_eq!(node.parent, Some(agg));
            }
        }
        // Hosts still inject at their own leaf.
        assert_eq!(tree.ingress[&map.hosts[0]], map.host_leaf[0]);
    }

    #[test]
    fn placement_is_deterministic() {
        let map = fat_tree_map(4, 64);
        for p in HandlerPlacement::ALL {
            let a = aggregation_tree(&map, &map.hosts, p);
            let b = aggregation_tree(&map, &map.hosts, p);
            assert_eq!(a.root, b.root, "{}", p.label());
            assert_eq!(
                a.nodes.keys().collect::<Vec<_>>(),
                b.nodes.keys().collect::<Vec<_>>()
            );
            assert_eq!(a.total_expect(), b.total_expect());
        }
    }

    #[test]
    #[should_panic(expected = "not a host")]
    fn non_host_participant_rejected() {
        let map = fat_tree_map(4, 8);
        aggregation_tree(&map, &[map.root], HandlerPlacement::Nca);
    }
}
