//! Database offload: Select and HashJoin with the filtering stage
//! pushed into the active switch (the paper's §5 database workloads),
//! showing the cache-pollution and traffic effects on the host.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example database_offload
//! ```

use asan_apps::runner::sweep;
use asan_apps::{hashjoin, select, Variant};

fn main() {
    // Scaled-down tables so the example runs in seconds; swap in
    // `Params::paper()` for the full 128 MB evaluation.
    let sp = select::Params {
        table_bytes: 8 << 20,
        ..select::Params::paper()
    };
    println!(
        "Select over an {} MB table (25% selectivity)\n",
        sp.table_bytes >> 20
    );
    let runs = sweep(|v| select::run(v, &sp));
    print_runs(&runs);

    let jp = hashjoin::Params {
        r_bytes: 1 << 20,
        s_bytes: 8 << 20,
        bits: 1 << 16,
        ..hashjoin::Params::paper()
    };
    println!(
        "\nHashJoin R={} MB ⋈ S={} MB with a bit-vector filter in the switch\n",
        jp.r_bytes >> 20,
        jp.s_bytes >> 20
    );
    let runs = sweep(|v| hashjoin::run(v, &jp));
    print_runs(&runs);
}

fn print_runs(runs: &[asan_apps::AppRun]) {
    let base = runs.iter().find(|r| r.variant == Variant::Normal).unwrap();
    println!(
        "{:<14} {:>12} {:>9} {:>11} {:>10} {:>8}",
        "config", "exec", "speedup", "host util", "stall%", "traffic"
    );
    for r in runs {
        println!(
            "{:<14} {:>12} {:>8.2}x {:>10.1}% {:>9.1}% {:>7.2}x",
            r.variant.label(),
            format!("{}", r.exec),
            base.exec.as_ps() as f64 / r.exec.as_ps() as f64,
            r.host_utilization * 100.0,
            r.host_breakdown.stall_fraction() * 100.0,
            r.host_traffic as f64 / base.host_traffic as f64,
        );
    }
}
