//! The four standard configurations and shared run plumbing.
//!
//! §5 evaluates every benchmark in four configurations: `normal`
//! (host-only, synchronous I/O), `normal+pref` (two outstanding I/O
//! requests), `active` (host + switch handler) and `active+pref`.

use std::env;

use asan_core::cluster::{Cluster, ClusterConfig, RunReport};
use asan_core::metrics::MetricsReport;
use asan_net::{NodeId, TopoSpec};
use asan_sim::stats::TimeBreakdown;
use asan_sim::SimTime;

/// One of the paper's four standard configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Host only, one outstanding I/O request.
    Normal,
    /// Host only, two outstanding I/O requests.
    NormalPref,
    /// Active switch, one outstanding I/O request.
    Active,
    /// Active switch, two outstanding I/O requests.
    ActivePref,
}

impl Variant {
    /// All four, in the paper's figure order.
    pub const ALL: [Variant; 4] = [
        Variant::Normal,
        Variant::NormalPref,
        Variant::Active,
        Variant::ActivePref,
    ];

    /// Whether the switch runs handlers in this configuration.
    pub fn is_active(self) -> bool {
        matches!(self, Variant::Active | Variant::ActivePref)
    }

    /// Number of outstanding I/O requests the host keeps in flight.
    pub fn outstanding(self) -> u64 {
        match self {
            Variant::Normal | Variant::Active => 1,
            Variant::NormalPref | Variant::ActivePref => 2,
        }
    }

    /// The figure label used in the paper ("normal", "normal+pref", …).
    pub fn label(self) -> &'static str {
        match self {
            Variant::Normal => "normal",
            Variant::NormalPref => "normal+pref",
            Variant::Active => "active",
            Variant::ActivePref => "active+pref",
        }
    }

    /// The breakdown-figure label prefix ("n", "n+p", "a", "a+p").
    pub fn short(self) -> &'static str {
        match self {
            Variant::Normal => "n",
            Variant::NormalPref => "n+p",
            Variant::Active => "a",
            Variant::ActivePref => "a+p",
        }
    }
}

/// The single-switch cluster every single-host benchmark runs on:
/// `hosts` compute nodes and `tcas` storage nodes on one switch.
pub fn standard_cluster(
    hosts: usize,
    tcas: usize,
    cfg: ClusterConfig,
) -> (Cluster, Vec<NodeId>, Vec<NodeId>, NodeId) {
    let (cl, map) = Cluster::from_spec(&TopoSpec::single_switch(hosts, tcas), cfg);
    (cl, map.hosts, map.tcas, map.root)
}

/// Result of one benchmark run in one configuration, with everything
/// the paper's two figures per application need.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Which configuration ran.
    pub variant: Variant,
    /// Application-level execution time.
    pub exec: SimTime,
    /// Host CPU breakdown (averaged over hosts for multi-node apps).
    pub host_breakdown: TimeBreakdown,
    /// Switch CPU breakdowns (one per switch CPU; empty for normal runs).
    pub switch_breakdowns: Vec<TimeBreakdown>,
    /// Host payload traffic in+out, summed over hosts (bytes).
    pub host_traffic: u64,
    /// Mean host utilization, the paper's `(1 − idle)/exec`.
    pub host_utilization: f64,
    /// Bytes carried by the fabric, summed over every link hop.
    pub link_bytes: u64,
    /// Application-specific correctness artifact (match count, digest…)
    /// for validation against a pure-Rust reference.
    pub artifact: u64,
    /// Canonical [`ClusterStats::digest`](asan_core::stats::ClusterStats::digest)
    /// of the run, for golden-digest regression checks.
    pub stats_digest: u64,
    /// Observability report: latency histograms (packet, handler, disk,
    /// buffer-wait, credit-stall) and the per-phase time breakdown.
    pub metrics: MetricsReport,
    /// Events the simulation processed (diagnostic, for events/sec
    /// accounting in the perf harness).
    pub events: u64,
    /// High-water mark of the scheduler's pending-event queue.
    pub peak_queue: u64,
    /// Fault-injection counters (all zero without an armed plan).
    pub faults: asan_sim::faults::FaultStats,
}

impl AppRun {
    /// Assembles an [`AppRun`] from a finished cluster and its report:
    /// derives the stats digest and the metrics report directly from
    /// the cluster so every benchmark gets them uniformly.
    pub fn from_report(
        variant: Variant,
        cl: &Cluster,
        report: &asan_core::cluster::RunReport,
        exec: SimTime,
        artifact: u64,
    ) -> AppRun {
        let stats_digest = cl.stats().digest();
        let metrics = cl.metrics(report);
        let exec_span = exec.since(asan_sim::SimTime::ZERO);
        let n = report.hosts.len().max(1) as u64;
        let host_breakdown = report
            .hosts
            .iter()
            .fold(TimeBreakdown::default(), |acc, h| acc.merged(&h.breakdown));
        let mut host_breakdown = TimeBreakdown {
            busy: host_breakdown.busy / n,
            stall: host_breakdown.stall / n,
            idle: host_breakdown.idle / n,
        };
        // The app-level execution time may extend past the last host's
        // finish (e.g. Tar's archive drain); the host idles until then.
        host_breakdown.pad_idle_to(exec_span);
        let switch_breakdowns: Vec<TimeBreakdown> = if variant.is_active() {
            report
                .switches
                .iter()
                .flat_map(|s| s.cpu_breakdowns.iter().copied())
                .map(|mut b| {
                    b.pad_idle_to(exec_span);
                    b
                })
                .collect()
        } else {
            Vec::new()
        };
        AppRun {
            variant,
            exec,
            host_utilization: host_breakdown.utilization(),
            host_breakdown,
            switch_breakdowns,
            host_traffic: report.total_host_payload(),
            link_bytes: report.link_bytes,
            artifact,
            stats_digest,
            metrics,
            events: report.events,
            peak_queue: report.peak_queue,
            faults: cl.fault_stats(),
        }
    }
}

/// The standard 4-variant sweep of a benchmark.
pub fn sweep(run: impl Fn(Variant) -> AppRun) -> Vec<AppRun> {
    Variant::ALL.iter().map(|&v| run(v)).collect()
}

/// Runs a benchmark cluster to completion, optionally exercising the
/// crash-safe checkpoint path. `build` must construct the cluster (and
/// any auxiliary context `T`) identically every time it is called —
/// [`Cluster::restore`] rebuilds only dynamic state on top of it.
///
/// Environment knobs (unset → a plain uninterrupted run):
///
/// - `ASAN_SNAPSHOT_EVENTS=<n>`: pause after `n` events, serialize the
///   full simulation state, rebuild a **fresh** cluster via `build`,
///   restore into it, and run that to completion. The run's digests
///   must be bit-identical to the uninterrupted run's.
/// - `ASAN_SNAPSHOT_SAVE=<dir>` (with `EVENTS`): also write the paused
///   snapshot to `<dir>/<tag>.snap` for a later process to resume.
/// - `ASAN_SNAPSHOT_LOAD=<dir>`: skip the initial run entirely; build
///   fresh, restore `<dir>/<tag>.snap` (a plain run if the saving
///   process finished before its pause point and wrote no file), and
///   run to completion — the cross-process half of the round trip.
pub fn drive<T>(tag: &str, build: impl Fn() -> (Cluster, T)) -> (Cluster, T, RunReport) {
    if let Ok(dir) = env::var("ASAN_SNAPSHOT_LOAD") {
        let (mut cl, cx) = build();
        let path = std::path::Path::new(&dir).join(format!("{tag}.snap"));
        match std::fs::read(&path) {
            Ok(bytes) => cl
                .restore(&bytes)
                .unwrap_or_else(|e| panic!("restore {}: {e:?}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("read {}: {e}", path.display()),
        }
        let report = cl.run().expect("restored run completes");
        return (cl, cx, report);
    }
    let (mut cl, cx) = build();
    let Some(pause) = snapshot_events() else {
        let report = cl.run().expect("benchmark run completes");
        return (cl, cx, report);
    };
    if let Some(report) = cl.run_events(pause).expect("benchmark run completes") {
        return (cl, cx, report); // finished before the pause point
    }
    let bytes = cl.snapshot();
    if let Ok(dir) = env::var("ASAN_SNAPSHOT_SAVE") {
        let path = std::path::Path::new(&dir).join(format!("{tag}.snap"));
        std::fs::write(&path, &bytes).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
    drop(cl);
    let (mut fresh, cx) = build();
    fresh
        .restore(&bytes)
        .expect("snapshot restores into an identical build");
    let report = fresh.run().expect("restored run completes");
    (fresh, cx, report)
}

/// Parses `ASAN_SNAPSHOT_EVENTS`; a set-but-unparsable value is a
/// configuration error worth failing loudly on.
fn snapshot_events() -> Option<u64> {
    let v = env::var("ASAN_SNAPSHOT_EVENTS").ok()?;
    Some(
        v.parse()
            .expect("ASAN_SNAPSHOT_EVENTS must be an event count"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_properties() {
        assert!(!Variant::Normal.is_active());
        assert!(Variant::ActivePref.is_active());
        assert_eq!(Variant::Normal.outstanding(), 1);
        assert_eq!(Variant::NormalPref.outstanding(), 2);
        assert_eq!(Variant::Active.label(), "active");
        assert_eq!(Variant::ActivePref.short(), "a+p");
        assert_eq!(Variant::ALL.len(), 4);
    }

    #[test]
    fn standard_cluster_builds() {
        let (cl, hs, ts, sw) = standard_cluster(2, 1, ClusterConfig::paper());
        assert_eq!(hs.len(), 2);
        assert_eq!(ts.len(), 1);
        assert!(cl.switch(sw).is_some());
    }
}
