//! Rule `snapshot-symmetry`: every `snapshot*` writer mirrors its
//! `restore*` reader, wherever that reader lives.
//!
//! The byte codec in `asan-sim::snap` is positional: `SnapReader`
//! trusts that the `restore` side issues exactly the calls the
//! `snapshot` side issued, in order. The per-file
//! `snapshot-completeness` rule proves every *field* is mentioned on
//! both sides, but a transposed pair of writes (`w.u32(a); w.u64(b)`
//! restored as `r.u64()?; r.u32()?`) mentions all the right fields and
//! still corrupts the restore — usually far from the edit, when a
//! checkpoint from a long sweep refuses to load. This rule extracts
//! the *sequence* of codec calls from each `snapshot<sfx>` fn and the
//! `restore<sfx>` counterpart on the same impl type — same file or
//! not — and denies on the first position where the two call tapes
//! disagree.
//!
//! The comparison is only sound for *straight-line* bodies: once a
//! codec branches (a per-variant `match`, an `Option` written as a
//! presence bool plus conditional payload), the static tape is a
//! superset of any runtime tape and a linear diff would flag correct
//! code. Pairs where either body contains a branch keyword are
//! therefore skipped — those codecs are patrolled by the per-field
//! `snapshot-completeness` rule and the round-trip tests instead.

use std::collections::BTreeMap;

use super::WorkspaceRule;
use crate::diag::{Diagnostic, Severity};
use crate::index::{FnDef, WorkspaceIndex};
use crate::lexer::{Kind, Token};

/// The codec surface shared by `SnapWriter` and `SnapReader`. A call
/// through any other method name is not part of the byte tape.
const SNAP_METHODS: &[&str] = &[
    "section",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "bool",
    "f64",
    "time",
    "dur",
    "bytes",
    "str",
    "opt_u64",
    "opt_time",
    "usize_from_u32",
];

pub(crate) struct SnapshotSymmetry;

impl WorkspaceRule for SnapshotSymmetry {
    fn name(&self) -> &'static str {
        "snapshot-symmetry"
    }

    fn describe(&self) -> &'static str {
        "a type's snapshot* writer call sequence equals its restore* reader call sequence"
    }

    fn scope(&self) -> &'static str {
        "workspace (every impl with a snapshot*/restore* pair)"
    }

    fn since_pr(&self) -> u32 {
        8
    }

    fn check(&self, index: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
        // Collect every snapshot*/restore* method (free fns excluded:
        // test helpers named `snapshot_roundtrip` etc. are not codec
        // halves). Key: (impl type, name suffix after snapshot/restore).
        let mut writers: BTreeMap<(String, String), Vec<(usize, &FnDef)>> = BTreeMap::new();
        let mut readers: BTreeMap<(String, String), Vec<(usize, &FnDef)>> = BTreeMap::new();
        for (fi, file) in index.files.iter().enumerate() {
            for f in &file.fns {
                let Some(ty) = &f.impl_ty else { continue };
                if let Some(sfx) = f.name.strip_prefix("snapshot") {
                    writers
                        .entry((ty.clone(), sfx.to_string()))
                        .or_default()
                        .push((fi, f));
                } else if let Some(sfx) = f.name.strip_prefix("restore") {
                    readers
                        .entry((ty.clone(), sfx.to_string()))
                        .or_default()
                        .push((fi, f));
                }
            }
        }

        for (key, ws) in &writers {
            let Some(rs) = readers.get(key) else {
                // `snapshot_events` with no `restore_events` is a
                // query method, not half of a codec pair.
                continue;
            };
            // Ambiguous pairs (a name defined twice on the same type,
            // e.g. two fixture copies) are skipped rather than guessed
            // at; the completeness rule still patrols each body.
            if ws.len() != 1 || rs.len() != 1 {
                continue;
            }
            let (wfi, wf) = ws[0];
            let (rfi, rf) = rs[0];
            if branches(&index.files[wfi].lexed.tokens, wf)
                || branches(&index.files[rfi].lexed.tokens, rf)
            {
                continue;
            }
            let wtape = call_tape(&index.files[wfi].lexed.tokens, wf);
            let rtape = call_tape(&index.files[rfi].lexed.tokens, rf);
            if wtape == rtape {
                continue;
            }
            let wfile = &index.files[wfi].rel_path;
            let n = wtape.len().max(rtape.len());
            let pos = (0..n).find(|&i| wtape.get(i) != rtape.get(i)).unwrap_or(0);
            let at = |tape: &[&'static str], i: usize| tape.get(i).copied().unwrap_or("<end>");
            out.push(Diagnostic {
                rule: self.name(),
                severity: Severity::Deny,
                file: index.files[rfi].rel_path.clone(),
                line: rf.line,
                col: rf.col,
                message: format!(
                    "`{ty}::{rname}` reads [{r}] but `{ty}::{wname}` ({wfile}:{wline}) \
                     writes [{w}]; first divergence at call {idx}: reader `{rcall}` vs \
                     writer `{wcall}` — the byte tape is positional, so the two \
                     sequences must be identical",
                    ty = key.0,
                    rname = rf.name,
                    wname = wf.name,
                    wline = wf.line,
                    r = rtape.join(","),
                    w = wtape.join(","),
                    idx = pos + 1,
                    rcall = at(&rtape, pos),
                    wcall = at(&wtape, pos),
                ),
            });
        }
    }
}

/// True when a fn body contains control flow that makes its codec-call
/// tape input-dependent, so a linear comparison would be unsound.
fn branches(toks: &[Token], f: &FnDef) -> bool {
    f.body.clone().any(|i| {
        let t = &toks[i];
        t.kind == Kind::Ident
            && matches!(
                t.text.as_str(),
                "if" | "else" | "match" | "for" | "while" | "loop"
            )
    })
}

/// The ordered codec-call tape of one fn body: every `recv.method(`
/// where `method` is in [`SNAP_METHODS`] and `recv` is a plain
/// identifier other than `self` (the writer/reader parameter).
/// `usize_from_u32` canonicalizes to `u32` — it consumes exactly the
/// bytes a writer-side `u32` produced.
fn call_tape(toks: &[Token], f: &FnDef) -> Vec<&'static str> {
    let mut tape = Vec::new();
    let body = f.body.clone();
    for i in body.clone() {
        let recv = &toks[i];
        if recv.kind != Kind::Ident || recv.text == "self" {
            continue;
        }
        // `foo.u32(` but not `self.count.u32(` or `Snap::u32(` — a
        // qualified receiver is somebody else's method.
        if i > body.start {
            let prev = &toks[i - 1];
            if prev.kind == Kind::Punct && (prev.text == "." || prev.text == "::") {
                continue;
            }
        }
        if !super::is_punct(toks, i + 1, ".") {
            continue;
        }
        let Some(m) = SNAP_METHODS
            .iter()
            .find(|m| super::is_ident(toks, i + 2, m))
        else {
            continue;
        };
        if !super::is_punct(toks, i + 3, "(") {
            continue;
        }
        tape.push(if *m == "usize_from_u32" { "u32" } else { *m });
    }
    tape
}
