//! `asan-lint` — the workspace's determinism & event-contract checker.
//!
//! The golden-digest regression (`tests/golden.rs`) proves after the
//! fact that a change kept all nine benchmarks bit-identical; this
//! crate is the *before* layer: a static pass over every `.rs` file
//! that rejects the constructs which historically cause digest drift —
//! unordered map iteration, wall-clock reads, ambient randomness,
//! silently truncating casts — plus two structural contracts (engines
//! decide explicitly per `Event` variant; every `ClusterStats` counter
//! reaches `digest()`).
//!
//! The container this workspace builds in has no crates.io access, so
//! the pass is built on a small in-tree lexer ([`lexer`]) rather than
//! `syn`; see `docs/DETERMINISM.md` for the rule catalog and the
//! `// asan-lint: allow(<rule>)` escape hatch.

use std::fs;
use std::path::{Path, PathBuf};

pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::{render_human, render_json, Diagnostic, Severity};

use rules::FileCtx;

/// What to check and how.
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root (where `Cargo.toml` and `crates/` live).
    pub root: PathBuf,
    /// Explicit files to check instead of walking the workspace.
    pub paths: Vec<PathBuf>,
    /// Apply every rule to every file, ignoring per-rule path scopes
    /// (used by the fixture tests).
    pub scope_all: bool,
}

/// A finished run: what was checked and what was found.
#[derive(Debug)]
pub struct Report {
    /// Files that were lexed and checked.
    pub checked_files: usize,
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of `Deny` findings (the exit-code driver).
    pub fn violations(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }
}

/// Runs the checker. `Err` means an internal error (unreadable file),
/// not a lint finding.
pub fn run(opts: &Options) -> Result<Report, String> {
    let files = if opts.paths.is_empty() {
        let mut v = Vec::new();
        walk(&opts.root, &mut v);
        v.sort();
        v
    } else {
        opts.paths.clone()
    };
    let rules = rules::all_rules();
    let mut diagnostics = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let rel = rel_path(&opts.root, file);
        let src =
            fs::read_to_string(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let lexed = lexer::lex(&src);
        let ctx = FileCtx {
            rel_path: &rel,
            lexed: &lexed,
        };
        checked += 1;
        for rule in &rules {
            if !opts.scope_all && !rule.applies(&rel) {
                continue;
            }
            let mut found = Vec::new();
            rule.check(&ctx, &mut found);
            found.retain(|d| !lexed.is_allowed(d.rule, d.line));
            diagnostics.extend(found);
        }
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        checked_files: checked,
        diagnostics,
    })
}

/// Workspace-relative display path with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Directories never scanned: build output, VCS, and the lint's own
/// known-bad fixture corpus.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "fixtures") || name.starts_with('.')
}

/// Recursively collects `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_snippet(rel: &str, src: &str, scope_all: bool) -> Vec<Diagnostic> {
        let lexed = lexer::lex(src);
        let ctx = FileCtx {
            rel_path: rel,
            lexed: &lexed,
        };
        let mut out = Vec::new();
        for rule in rules::all_rules() {
            if !scope_all && !rule.applies(rel) {
                continue;
            }
            let mut found = Vec::new();
            rule.check(&ctx, &mut found);
            found.retain(|d| !lexed.is_allowed(d.rule, d.line));
            out.extend(found);
        }
        out
    }

    #[test]
    fn hashmap_denied_in_core_but_not_bench() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check_snippet("crates/core/src/x.rs", src, false).len(), 1);
        assert!(check_snippet("crates/bench/src/x.rs", src, false).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "use std::collections::HashMap; // asan-lint: allow(no-unordered-iteration)\n";
        assert!(check_snippet("crates/core/src/x.rs", src, false).is_empty());
    }

    #[test]
    fn wall_clock_denied_outside_benches() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(check_snippet("crates/cpu/src/x.rs", src, false).len(), 2);
        assert!(check_snippet("crates/bench/benches/x.rs", src, false).is_empty());
    }

    #[test]
    fn randomness_denied_everywhere() {
        let src = "fn f() { let x = rand::random::<u64>(); }\n";
        assert_eq!(
            check_snippet("crates/bench/benches/x.rs", src, false).len(),
            1
        );
    }

    #[test]
    fn lossy_cast_on_model_quantity() {
        let src = "fn f(total_cycles: u64) -> u32 { total_cycles as u32 }\n";
        assert_eq!(check_snippet("crates/cpu/src/x.rs", src, false).len(), 1);
        // Widening is fine.
        let ok = "fn f(total_cycles: u32) -> u64 { u64::from(total_cycles) }\n";
        assert!(check_snippet("crates/cpu/src/x.rs", ok, false).is_empty());
    }

    #[test]
    fn event_wildcard_denied_in_engines() {
        let src = "fn on_event(&mut self, ev: Event) {\n    match ev {\n        Event::Start(_) => {}\n        _ => {}\n    }\n}\n";
        let d = check_snippet("crates/core/src/engines/x.rs", src, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        // A loud catch-all is a conscious decision.
        let ok = "fn on_event(&mut self, ev: Event) {\n    match ev {\n        Event::Start(_) => {}\n        other => unreachable!(\"{other:?}\"),\n    }\n}\n";
        assert!(check_snippet("crates/core/src/engines/x.rs", ok, false).is_empty());
    }

    #[test]
    fn digest_completeness_finds_missing_field() {
        let src = "pub struct ClusterStats { pub events: u64, pub lost: u64 }\n\
                   impl ClusterStats { pub fn digest(&self) -> u64 { self.events } }\n";
        let d = check_snippet("crates/core/src/stats.rs", src, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lost"));
    }
}
