//! Corrected twin: the nanosecond knob is converted explicitly before
//! the arithmetic, so both operands are picoseconds.

pub fn deadline(now_ps: u64, timeout_ns: u64) -> u64 {
    now_ps + SimDuration::from_ns(timeout_ns).as_ps()
}
