//! Memory-system timing models for the Active SAN simulator.
//!
//! This crate provides the host and switch-CPU memory hierarchies used by
//! the reproduction of *Active I/O Switches in System Area Networks*
//! (HPCA 2003):
//!
//! * [`cache`] — generic set-associative, write-back, LRU caches
//!   (host L1I/L1D/L2 and the switch CPU's 4 KB I / 1 KB D caches);
//! * [`tlb`] — the 64-entry fully-associative instruction/data TLBs;
//! * [`dram`] — the RDRAM channel model (1.6 GB/s, 100 ns page hit,
//!   122 ns page miss);
//! * [`hierarchy`] — the combined walk with the paper's stall semantics
//!   (blocking loads with critical-word-first timing, non-blocking
//!   stores/prefetches limited to four outstanding lines, page-table
//!   walks on TLB misses).
//!
//! # Example
//!
//! ```
//! use asan_mem::hierarchy::{MemoryHierarchy, HierarchyConfig};
//! use asan_sim::SimTime;
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::host());
//! let first = mem.load(0xA000, SimTime::ZERO);
//! assert!(!first.l1_hit);             // cold
//! let second = mem.load(0xA008, SimTime::from_us(1));
//! assert!(second.l1_hit);             // same 64 B line
//! ```

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod tlb;

pub use cache::{AccessKind, Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{HierarchyConfig, MemOutcome, MemoryHierarchy};
pub use tlb::{Tlb, TlbConfig};
