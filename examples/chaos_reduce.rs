//! Reduce under chaos: deterministic fault injection across the active
//! SAN stack, and the graceful-degradation machinery that keeps every
//! run completing — correctly — anyway.
//!
//! Two experiments:
//!
//! 1. **Handler trap.** The collective-reduction combine handler traps
//!    mid-stream on every switch (a handler bug caught by the dispatch
//!    watchdog). Each switch disables the jump-table entry and migrates
//!    the handler — with its accumulated partial sums — to a host-side
//!    fallback engine. The reduction still completes and still
//!    validates lane-by-lane against the scalar reference; the printed
//!    overhead is the price of degradation.
//!
//! 2. **Packet corruption.** An active storage read runs under 1%
//!    packet bit-corruption. Every corrupted packet is caught by the
//!    receiver's ICRC check, NAKed, and retransmitted from the TCA's
//!    buffer cache; the stream handler sees an intact, in-order flow.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chaos_reduce
//! ```

use asan_apps::reduce::{run_with_config, Mode, REDUCE_HANDLER};
use asan_core::cluster::{Cluster, ClusterConfig, Dest, FileId, HostCtx, HostMsg, HostProgram};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, LinkConfig, NodeId};
use asan_sim::faults::{FaultPlan, HandlerTrap};
use asan_sim::SimTime;

fn main() {
    handler_trap_experiment();
    corruption_experiment();
}

fn handler_trap_experiment() {
    println!("1. Handler trap → host fallback (Reduce-to-one, 8 nodes)\n");

    let p = 8;
    let clean = run_with_config(Mode::ReduceToOne, true, p, ClusterConfig::paper());

    let mut cfg = ClusterConfig::paper();
    let mut plan = FaultPlan::quiet(0xC4A05);
    plan.handler_traps.push(HandlerTrap {
        node: None, // any switch: every combine engine eventually traps
        handler: REDUCE_HANDLER.as_u8(),
        at_invocation: 2,
    });
    cfg.faults = Some(plan);
    // run_with_config validates every delivered lane against the scalar
    // reference, so completing at all proves the fallback preserved the
    // handlers' partial sums.
    let chaos = run_with_config(Mode::ReduceToOne, true, p, cfg);

    let clean_us = clean.latency.as_ns() as f64 / 1000.0;
    let chaos_us = chaos.latency.as_ns() as f64 / 1000.0;
    println!("   clean active reduce:    {clean_us:>9.2} us");
    println!("   with handler traps:     {chaos_us:>9.2} us");
    println!(
        "   degradation overhead:   {:>8.1}%  (result still bit-exact)",
        (chaos_us / clean_us - 1.0) * 100.0
    );
    println!(
        "   traps fired: {} | packets processed on host fallback: {}\n",
        chaos.faults.handler_trap.degraded, chaos.faults.fallback_packets
    );
}

/// Counts matching bytes in the switch, sends only the count home.
struct CountHandler {
    host: NodeId,
    count: u64,
    total: u64,
    expect: u64,
}
impl Handler for CountHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        self.count += data.iter().filter(|&&b| b == 0x7F).count() as u64;
        self.total += data.len() as u64;
        if self.total >= self.expect {
            ctx.send(self.host, None, 0, &self.count.to_le_bytes());
        }
    }
}

struct ActiveCount {
    file: FileId,
    sw: NodeId,
    result: Option<u64>,
}
impl HostProgram for ActiveCount {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let len = ctx.file_len(self.file);
        ctx.read_file(
            self.file,
            0,
            len,
            Dest::Mapped {
                node: self.sw,
                handler: HandlerId::new(1),
                base_addr: 0,
            },
        );
    }
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        self.result = Some(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        ctx.finish();
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

fn corruption_experiment() {
    println!("2. 1% packet corruption on an active 1 MB storage read\n");

    const FILE_BYTES: u64 = 1024 * 1024;
    type ChaosRun = (
        SimTime,
        u64,
        asan_sim::faults::FaultStats,
        asan_core::metrics::MetricsReport,
    );
    let run = |faults: Option<FaultPlan>| -> ChaosRun {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SwitchSpec::paper());
        let host = b.add_host();
        let tca = b.add_tca();
        b.connect(host, sw, LinkConfig::paper());
        b.connect(tca, sw, LinkConfig::paper());
        let mut cfg = ClusterConfig::paper();
        cfg.faults = faults;
        let mut cl = Cluster::new(b, cfg);
        let data: Vec<u8> = (0..FILE_BYTES as u32)
            .map(|i| if i % 64 == 0 { 0x7F } else { 0 })
            .collect();
        let file = cl.add_file(tca, data).expect("add file");
        cl.register_handler(
            sw,
            HandlerId::new(1),
            Box::new(CountHandler {
                host,
                count: 0,
                total: 0,
                expect: FILE_BYTES,
            }),
        )
        .expect("register");
        cl.set_program(
            host,
            Box::new(ActiveCount {
                file,
                sw,
                result: None,
            }),
        )
        .expect("program");
        let report = cl.run().expect("run recovers from injected faults");
        let got = cl
            .take_program(host)
            .and_then(|p| {
                p.as_any()
                    .and_then(|a| a.downcast_ref::<ActiveCount>())
                    .and_then(|p| p.result)
            })
            .expect("count arrived");
        let metrics = cl.metrics(&report);
        (report.finish, got, cl.fault_stats(), metrics)
    };

    let (clean_finish, clean_count, _, clean_m) = run(None);
    let mut plan = FaultPlan::quiet(0xBADF00D);
    plan.packet_corrupt_prob = 0.01;
    let (finish, count, fs, chaos_m) = run(Some(plan));

    assert_eq!(count, clean_count, "corruption leaked into the result");
    let clean_us = clean_finish.as_ns() as f64 / 1000.0;
    let chaos_us = finish.as_ns() as f64 / 1000.0;
    println!("   clean read+count:       {clean_us:>9.2} us");
    println!("   under 1% corruption:    {chaos_us:>9.2} us");
    println!(
        "   recovery overhead:      {:>8.1}%  (count identical: {count})",
        (chaos_us / clean_us - 1.0) * 100.0
    );
    println!(
        "   corrupt injected/detected/recovered: {}/{}/{} | retransmits: {}",
        fs.packet_corrupt.injected,
        fs.packet_corrupt.detected,
        fs.packet_corrupt.recovered,
        fs.retransmits
    );

    // Retransmission shows up as a latency *tail*, not a shifted
    // median: compare the percentile tables span by span.
    println!("\n   latency percentiles, clean vs corrupted:");
    println!(
        "   {:<14} {:>12} {:>12}   {:>12} {:>12}",
        "span", "clean p50", "clean p99", "chaos p50", "chaos p99"
    );
    for ((name, clean_h), (_, chaos_h)) in
        clean_m.latencies().iter().zip(chaos_m.latencies().iter())
    {
        if clean_h.count() == 0 && chaos_h.count() == 0 {
            continue;
        }
        let ps = |v: u64| format!("{}", asan_sim::SimDuration::from_ps(v));
        println!(
            "   {name:<14} {:>12} {:>12}   {:>12} {:>12}",
            ps(clean_h.percentile(50)),
            ps(clean_h.percentile(99)),
            ps(chaos_h.percentile(50)),
            ps(chaos_h.percentile(99)),
        );
    }
}
