//! `asan-lint` CLI. See `--help` for the exit-code contract.

use std::path::PathBuf;
use std::process::ExitCode;

use asan_lint::{diag, fix, render_human, render_json, rules, Options};

const USAGE: &str = "\
asan-lint — determinism & event-contract checker for the Active SAN workspace

USAGE:
    cargo run -p asan-lint -- check [OPTIONS] [FILES...]

ARGS:
    [FILES...]        Report findings only for these .rs files. The whole
                      workspace is still indexed, so cross-file rules keep
                      full context. Default: report on every .rs file under
                      the workspace root (skipping target/, .git/ and
                      fixture directories). Non-.rs paths are ignored, so
                      `check --paths $(git diff --name-only main)` works.

OPTIONS:
    --format <human|json>   Output format (default: human)
    --root <DIR>            Workspace root (default: current directory)
    --paths                 No-op separator before a file list (readability)
    --scope-all             Apply every rule to every file, ignoring the
                            per-rule crate scopes (used by fixture tests)
    --baseline <FILE>       Swallow findings listed in FILE (one per line:
                            rule<TAB>file<TAB>message); they count as
                            `baselined`, not violations
    --write-baseline <FILE> Write the current findings to FILE in baseline
                            format and exit 0
    --diff-base <REF>       Report only findings in files changed since the
                            git ref REF
    --fix                   Mechanically rewrite fixable findings
                            (unused-allow removal, HashMap->BTreeMap), then
                            re-check and report what remains
    --fix-dry-run           Report what --fix would rewrite, writing nothing
    --fix-dirty             Let --fix touch files with unstaged git changes
    --list-rules            Print the rule catalog and exit (honors --format)
    -h, --help              Print this help

EXIT CODES:
    0    clean — no deny-level findings
    1    one or more deny-level findings
    2    internal error (bad arguments, unreadable file)

Findings can be suppressed per line with a trailing or preceding comment:
    // asan-lint: allow(<rule>[, <rule>...])
Each directive must suppress at least one finding — a stale one is an
`unused-allow` finding itself (and `--fix` deletes it). The rule catalog
lives in docs/DETERMINISM.md.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("asan-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    if args.iter().any(|a| a == "--list-rules") {
        let json = args
            .iter()
            .position(|a| a == "--format")
            .and_then(|i| args.get(i + 1))
            .is_some_and(|f| f == "json");
        print!("{}", list_rules(json));
        return Ok(ExitCode::SUCCESS);
    }
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}` (try --help)")),
        None => return Err("missing command; try `asan-lint check` or --help".to_string()),
    }
    let mut opts = Options {
        root: std::env::current_dir().map_err(|e| e.to_string())?,
        ..Options::default()
    };
    let mut format = "human".to_string();
    let mut write_baseline: Option<PathBuf> = None;
    let mut named_paths = false;
    let mut do_fix = false;
    let mut fix_dry_run = false;
    let mut fix_dirty = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = it
                    .next()
                    .ok_or("--format needs a value (human|json)")?
                    .clone();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (human|json)"));
                }
            }
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--scope-all" => opts.scope_all = true,
            "--paths" => {} // separator; the file list follows positionally
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a file")?,
                ));
            }
            "--diff-base" => {
                opts.diff_base = Some(it.next().ok_or("--diff-base needs a git ref")?.clone());
            }
            "--fix" => do_fix = true,
            "--fix-dry-run" => fix_dry_run = true,
            "--fix-dirty" => fix_dirty = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}` (try --help)"));
            }
            path => {
                // Tolerate non-.rs and vanished paths so a raw
                // `git diff --name-only` file list just works.
                named_paths = true;
                if !path.ends_with(".rs") {
                    continue;
                }
                if std::path::Path::new(path).exists() {
                    opts.paths.push(PathBuf::from(path));
                } else {
                    eprintln!("asan-lint: skipping {path}: no such file (deleted?)");
                }
            }
        }
    }
    if named_paths && opts.paths.is_empty() {
        // Everything the caller named is gone or not Rust; an empty
        // file list is a clean run, not an error, so that a pure
        // deletion/docs diff passes the CI fast pass.
        eprintln!("asan-lint: no checkable files in the given list");
        return Ok(ExitCode::SUCCESS);
    }

    let mut report = asan_lint::run(&opts)?;
    if do_fix || fix_dry_run {
        let outcome = fix::apply(&opts.root, &report.diagnostics, fix_dirty, !do_fix)?;
        for f in &outcome.skipped_dirty {
            eprintln!("asan-lint: skipping {f}: unstaged changes (use --fix-dirty to override)");
        }
        if do_fix {
            eprintln!(
                "asan-lint: fixed {} finding(s) across {} file(s)",
                outcome.edits, outcome.files_fixed
            );
            report = asan_lint::run(&opts)?;
        } else {
            eprintln!(
                "asan-lint: --fix would rewrite {} finding(s) across {} file(s)",
                outcome.edits, outcome.files_fixed
            );
        }
    }
    if let Some(path) = write_baseline {
        let mut text = String::new();
        for d in &report.diagnostics {
            text.push_str(&asan_lint::baseline_line(d));
            text.push('\n');
        }
        std::fs::write(&path, text)
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
        eprintln!(
            "asan-lint: wrote {} finding(s) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let rendered = if format == "json" {
        render_json(&report.diagnostics, &report.summary())
    } else {
        render_human(&report.diagnostics, &report.summary())
    };
    print!("{rendered}");
    Ok(if report.violations() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Renders the rule catalog. The JSON shape is pinned by a golden test
/// in `crates/lint/tests` — changing the rule set means changing that
/// test, which is the point.
fn list_rules(json: bool) -> String {
    let catalog = rules::catalog();
    if !json {
        let mut out = String::new();
        for e in &catalog {
            out.push_str(&format!(
                "{:<24} [{}, since PR {}] {}\n                         scope: {}\n",
                e.name, e.analysis, e.since_pr, e.describe, e.scope
            ));
        }
        return out;
    }
    let mut out = String::from("{\n  \"catalog_version\": ");
    out.push_str(&rules::CATALOG_VERSION.to_string());
    out.push_str(",\n  \"rules\": [");
    for (i, e) in catalog.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"severity\": \"deny\", \"scope\": {}, \"since_pr\": {}, \"analysis\": {}}}",
            diag::json_str(e.name),
            diag::json_str(e.scope),
            e.since_pr,
            diag::json_str(e.analysis),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
