//! Rule `event-flow-closure`: the `Event` vocabulary is closed over
//! the workspace.
//!
//! The per-file `event-exhaustiveness` rule can prove an engine's
//! `match` makes a decision per arm — but it cannot see that a variant
//! constructed in `crates/net` is matched by *no* engine at all, or by
//! two. Both bugs survive a loud `other => unreachable!()` catch-all:
//! the orphaned variant simply never reaches any engine's match (the
//! bus routes it to a subsystem whose engine rejects it at runtime,
//! or the simulation silently drops it), and the first digest that
//! notices is a golden regression three layers away. This rule closes
//! the loop over the phase-1 workspace index: for the workspace's
//! `enum Event`, every variant must be (a) constructed somewhere,
//! (b) matched in exactly one engine's `on_event` body. A variant
//! matched nowhere is *orphaned*; a variant never constructed is
//! *dead*; a variant matched in two engines has ambiguous ownership.
//! Diagnostics anchor at the variant's declaration so the fix site is
//! always the event vocabulary itself.

use std::collections::{BTreeMap, BTreeSet};

use super::WorkspaceRule;
use crate::diag::{Diagnostic, Severity};
use crate::index::{pattern_spans, WorkspaceIndex};
use crate::lexer::Kind;

/// The enum whose closure is checked.
const EVENT_ENUM: &str = "Event";

pub(crate) struct EventFlowClosure;

impl WorkspaceRule for EventFlowClosure {
    fn name(&self) -> &'static str {
        "event-flow-closure"
    }

    fn describe(&self) -> &'static str {
        "every Event variant is constructed somewhere and matched by exactly one engine's on_event"
    }

    fn scope(&self) -> &'static str {
        "workspace (anchored at the enum Event declaration)"
    }

    fn since_pr(&self) -> u32 {
        8
    }

    fn check(&self, index: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
        // Where is `enum Event` declared? No declaration in the index
        // (e.g. a fixture set without one) means nothing to close
        // over.
        let decls: Vec<(usize, usize)> = index
            .files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| {
                f.enums
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.name == EVENT_ENUM)
                    .map(move |(ei, _)| (fi, ei))
            })
            .collect();
        if decls.is_empty() {
            return;
        }

        // One pass over every file: classify each `Event::Variant`
        // reference as pattern (inside a match-arm pattern span) or
        // construction, and attribute pattern references to the
        // enclosing `on_event`'s impl type.
        let mut constructed: BTreeMap<String, (String, u32)> = BTreeMap::new();
        let mut matched_by: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for file in &index.files {
            let toks = &file.lexed.tokens;
            let spans = pattern_spans(toks, 0..toks.len());
            for i in 0..toks.len() {
                let t = &toks[i];
                if t.kind != Kind::Ident || t.text != EVENT_ENUM {
                    continue;
                }
                if !super::is_punct(toks, i + 1, "::") {
                    continue;
                }
                let Some(v) = toks.get(i + 2).filter(|v| v.kind == Kind::Ident) else {
                    continue;
                };
                // `Event::restore(...)` and friends are associated
                // fns, not variants; variants are UpperCamelCase.
                if !v.text.starts_with(char::is_uppercase) {
                    continue;
                }
                let in_pattern = spans.iter().any(|s| s.contains(&i));
                if in_pattern {
                    // Pattern position: counts as "handled" only when
                    // the enclosing fn is an engine's `on_event`. A
                    // routing table (`subsystem_for`) or a test
                    // asserting on an event is neutral.
                    let handler = file
                        .fns
                        .iter()
                        .find(|f| f.name == "on_event" && f.body.contains(&i));
                    if let Some(f) = handler {
                        if let Some(ty) = &f.impl_ty {
                            matched_by
                                .entry(v.text.clone())
                                .or_default()
                                .insert(ty.clone());
                        }
                    }
                } else {
                    constructed
                        .entry(v.text.clone())
                        .or_insert_with(|| (file.rel_path.clone(), v.line));
                }
            }
        }

        // Judge every declared variant.
        for (fi, ei) in decls {
            let file = &index.files[fi];
            let decl = &file.enums[ei];
            for v in &decl.variants {
                let built = constructed.get(&v.name);
                let engines = matched_by.get(&v.name);
                let n_engines = engines.map_or(0, BTreeSet::len);
                if built.is_none() {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line: v.line,
                        col: v.col,
                        message: format!(
                            "dead event: `{EVENT_ENUM}::{}` is declared but constructed \
                             nowhere in the workspace; delete the variant or wire up its \
                             producer",
                            v.name,
                        ),
                    });
                }
                if let (Some((f, l)), 0) = (built, n_engines) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line: v.line,
                        col: v.col,
                        message: format!(
                            "orphaned event: `{EVENT_ENUM}::{}` is constructed (e.g. \
                             {f}:{l}) but matched in no engine's `on_event`; route it to \
                             an engine or remove the producer",
                            v.name,
                        ),
                    });
                }
                if n_engines > 1 {
                    let owners: Vec<&str> = engines
                        .expect("n_engines > 1")
                        .iter()
                        .map(String::as_str)
                        .collect();
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Deny,
                        file: file.rel_path.clone(),
                        line: v.line,
                        col: v.col,
                        message: format!(
                            "ambiguous event ownership: `{EVENT_ENUM}::{}` is matched in \
                             `on_event` of {} — the bus routes each variant to exactly \
                             one engine",
                            v.name,
                            owners.join(", "),
                        ),
                    });
                }
            }
        }
    }
}
