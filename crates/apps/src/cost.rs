//! Per-application instruction-cost calibration constants.
//!
//! The original evaluation ran real MIPS binaries; we charge equivalent
//! instruction counts per unit of real data processed. Each constant is
//! an estimate of the dynamic instruction count of the corresponding
//! inner loop on a single-issue MIPS-like core, chosen so the four
//! configurations reproduce the shape of the paper's Figures 3–17 (see
//! EXPERIMENTS.md for the calibration notes and the measured results).

/// MPEG-filter: colour reduction (decode, matrix transform, re-encode)
/// per byte of I-frame data, on the host.
pub const MPEG_COLOR_INSTR_PER_BYTE: u64 = 190;

/// MPEG-filter: frame filtering (header checks plus copying surviving
/// bytes to the output stream) per byte scanned.
pub const MPEG_FILTER_INSTR_PER_BYTE: u64 = 24;

/// MPEG-filter: fixed per-frame header parse cost.
pub const MPEG_FRAME_PARSE_INSTR: u64 = 60;

/// HashJoin: hash function + bit-vector index arithmetic per record.
pub const JOIN_HASH_INSTR: u64 = 24;

/// HashJoin: hash-table insert (R build phase) per record, excluding
/// the memory references charged explicitly.
pub const JOIN_INSERT_INSTR: u64 = 40;

/// HashJoin: hash-table probe + key compare per surviving S record.
pub const JOIN_PROBE_INSTR: u64 = 48;

/// Select: range predicate evaluation per record.
pub const SELECT_PREDICATE_INSTR: u64 = 16;

/// Select: per matching record tally on the host.
pub const SELECT_COUNT_INSTR: u64 = 6;

/// Grep: DFA step cost per input byte (table load + compare + branch).
pub const GREP_DFA_INSTR_PER_BYTE: u64 = 4;

/// Grep: per-line bookkeeping once a match is found.
pub const GREP_MATCH_LINE_INSTR: u64 = 200;

/// Tar: per-file header generation on the host (stat, format, checksum).
pub const TAR_HEADER_INSTR: u64 = 3_000;

/// Tar: per-byte archive copy cost in the normal (host-mediated) case.
pub const TAR_COPY_INSTR_PER_BYTE: u64 = 2;

/// Sort: partition decision per record (key prefix extract + range map).
pub const SORT_PARTITION_INSTR: u64 = 18;

/// Sort: per-record copy into the destination bucket (plus the memory
/// references charged explicitly).
pub const SORT_COPY_INSTR: u64 = 30;

/// MD5: compression cost per input byte. RFC 1321 runs 64 rounds of
/// ~8 operations per 64-byte block; with loads, stores and loop
/// overhead a single-issue core spends ~16 instructions per byte.
pub const MD5_INSTR_PER_BYTE: u64 = 16;

/// Reduction: u32 lane add per 8-byte double-word (2 lanes: 2 loads,
/// 1 add each — the explicit buffer/memory charges cover the loads).
pub const REDUCE_ADD_INSTR_PER_DWORD: u64 = 4;

/// Reduction, host side (the paper's λ): combining a received 512 B
/// vector into the local one — copy out of the receive buffer, 128 u32
/// adds, write back, loop overhead.
pub const REDUCE_HOST_COMBINE_INSTR: u64 = 2_500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_switch_cost_ratio_is_sane() {
        // The switch runs at 1/4 the host clock; handlers must be at
        // most comparable per-byte cost or the partition makes no sense.
        let costs = std::hint::black_box([
            MPEG_FILTER_INSTR_PER_BYTE,
            MPEG_COLOR_INSTR_PER_BYTE,
            GREP_DFA_INSTR_PER_BYTE,
            MD5_INSTR_PER_BYTE,
        ]);
        assert!(
            costs[0] * 4 < costs[1] * 4,
            "filter must be lighter than colour"
        );
        assert!(costs[2] < 10, "DFA steps are a few instructions");
        assert!(costs[3] >= 7, "MD5 is compute-heavy by design");
    }
}
