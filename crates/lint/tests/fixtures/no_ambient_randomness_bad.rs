//! Known-bad: fault decisions drawn from OS entropy can never be
//! replayed.

pub fn should_drop_packet(prob: f64) -> bool {
    let roll: f64 = rand::random();
    let _ = rand::thread_rng();
    roll < prob
}
