//! Discrete-event simulation kernel for the Active SAN simulator.
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution simulated time,
//!   exact for both the 2 GHz host clock (500 ps/cycle) and the 500 MHz
//!   switch clock (2000 ps/cycle).
//! * [`EventQueue`] — a deterministic pending-event set. Ties in time are
//!   broken by insertion sequence number so simulations are reproducible
//!   bit-for-bit across runs.
//! * [`sched::Scheduler`] — the run-loop facade over the queue: pop
//!   counting on top of the deterministic ordering.
//! * [`trace`] — typed observability spans, causal trace identity
//!   ([`trace::TraceCtx`]), and the [`trace::TraceSink`] contract
//!   (null / JSONL / in-memory ring sinks).
//! * [`series`] — windowed time-series telemetry: fixed simulated-time
//!   windows with deterministic bucket edges, behind the metrics
//!   report's `timeline` section.
//! * [`perfetto`] — byte-reproducible Chrome `trace_event` JSON export
//!   of a run's spans (the flight recorder's renderable artifact).
//! * [`hist`] — dependency-free log-linear latency histograms recording
//!   simulated-time distributions (packet, handler, disk, buffer-wait,
//!   credit-stall).
//! * [`rng::SimRng`] — a small, dependency-free, seedable PRNG
//!   (xoshiro256**) used by all workload generators.
//! * [`stats`] — counters, accumulators and time-weighted statistics used
//!   for the paper's metrics (execution time, utilization, traffic).
//! * [`faults`] — seeded, deterministic fault plans and the injector
//!   every layer consults (packet corruption/drop, disk errors, link
//!   outages, handler traps), with per-fault statistics.
//! * [`snap`] — the versioned, dependency-free binary snapshot codec
//!   ([`SnapWriter`]/[`SnapReader`]) behind crash-safe checkpoint and
//!   restore of mid-run simulations.
//!
//! # Example
//!
//! ```
//! use asan_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_ns(5), "second");
//! q.push(SimTime::ZERO + SimDuration::from_ns(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_ns(1));
//! ```

pub mod faults;
pub mod hist;
pub mod perfetto;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod series;
pub mod snap;
pub mod stats;
pub mod time;
pub mod trace;

pub use faults::{FaultInjector, FaultPlan, FaultStats};
pub use hist::LogHistogram;
pub use perfetto::PerfettoSink;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use sched::{Scheduler, Traceable};
pub use series::{TimeSeries, Timeline, Track};
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
pub use trace::{JsonlSink, NullSink, RingSink, Span, SpanKind, TraceCtx, TraceSink};
