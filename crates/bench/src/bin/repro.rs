//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--small] <experiment>...
//!
//! experiments:
//!   table1          application & problem-size table
//!   fig3 fig4       MPEG-filter overall / breakdown
//!   fig5 fig6       HashJoin overall / breakdown
//!   fig7 fig8       Select overall / breakdown
//!   fig9 fig10      Grep overall / breakdown
//!   fig11 fig12     Tar overall / breakdown
//!   fig13 fig14     Parallel Sort overall / breakdown
//!   fig15           Collective Reduce-to-one scaling (2..128 nodes)
//!   fig16           Collective Distributed Reduce scaling
//!   fig17           MD5 with 1/2/4 switch CPUs
//!   table2          reduction semantics check
//!   ablations       design-choice ablations (valid bits, ATB, D$, clock)
//!   twolevel        two-level active I/O (active disks + switches, §6)
//!   multiprog       co-scheduled background job (§7's throughput claim)
//!   chaos           benchmarks under seeded fault injection
//!   chaos-digest    deterministic fault-run digest (CI runs it twice)
//!   metrics         structured telemetry: per-phase time breakdown and
//!                   latency percentiles for all nine benchmarks,
//!                   normal + active (also selected by --metrics;
//!                   add --json for the analyzer's input document)
//!   golden          per-benchmark stats digests (normal + active), the
//!                   golden-digest regression input (tests/golden_digests.txt)
//!   perf            wall-clock per benchmark run (normal + active),
//!                   events/sec and peak queue depth; writes
//!                   BENCH_PERF.json for perf-regression tracking
//!   scale           multi-switch scale sweep: collective reduction
//!                   across node counts × fat-tree radices × handler
//!                   placements vs the host-side MST baseline (add
//!                   --json for the analyzer's bench-scale-v1 document)
//!   golden-fabric   multi-switch golden digests: reduction on a
//!                   radix-4 fat-tree at 64 hosts, every placement ×
//!                   mode (tests/golden_digests_fabric.txt)
//!   timeline        flight-recorder showcase: the fat-tree reduction
//!                   with NCA vs root handler placement, Perfetto
//!                   export on; writes timeline.json and one
//!                   *.perfetto.json per run under `--results <dir>`
//!                   (default sweep-results/), byte-identical across
//!                   reruns and worker counts
//!   sweep           fault-tolerant parameter sweep: the golden grid
//!                   plus the MD5-CPU and reduction node-count axes,
//!                   with a digest-keyed per-cell cache under
//!                   `--results <dir>` (default sweep-results/). A
//!                   killed sweep resumes from the cache and writes a
//!                   byte-identical sweep_results.json at any ASAN_JOBS
//!   snapcheck       crash-safety check: runs the golden sweep plain,
//!                   paused+snapshotted (ASAN_SNAPSHOT_EVENTS/_SAVE),
//!                   and restored in a fresh process (_LOAD); all three
//!                   outputs must be byte-identical
//!   fork            warmed-start check: snapshots a paused golden
//!                   sweep once, then forks several continuations from
//!                   the same snapshots at different worker counts;
//!                   every fork must print byte-identical digests
//!   all             everything above
//! ```
//!
//! `--csv` prints machine-readable rows for the overall figures
//! instead of the formatted tables (for plotting).
//!
//! `--small` substitutes the scaled-down test inputs so the whole suite
//! finishes in seconds (useful for CI smoke runs); omit it to run the
//! paper's full problem sizes.
//!
//! The `golden`, `metrics` and `perf` sweeps run their 18 independent
//! (benchmark × config) simulations on a worker pool
//! (`asan_bench::pool`); results are printed in submission order, so
//! output is byte-identical for any worker count. `ASAN_JOBS=<n>`
//! overrides the worker count (default: available parallelism).

use std::env;

use asan_apps::runner::{sweep, AppRun, Variant};
use asan_apps::{grep, hashjoin, md5app, mpeg, multiprog, psort, reduce, select, tar, twolevel};
use asan_bench::{
    breakdown_table, latency_report, metrics_json, overall_csv, overall_table, parse_metrics_doc,
    perf, phase_breakdown_report, pool, scale, speedups, sweep as sweep_drv, timeline_report,
    BenchMetrics,
};
use asan_core::cluster::{Cluster, ClusterConfig, Dest, FileId, HostCtx, HostProgram, ReqId};
use asan_core::metrics::MetricsReport;
use asan_core::HandlerPlacement;
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::LinkConfig;
use asan_sim::faults::{FaultPlan, HandlerTrap};

struct Scale {
    small: bool,
    csv: bool,
    json: bool,
}

impl Scale {
    fn mpeg(&self) -> mpeg::Params {
        if self.small {
            mpeg::Params::small()
        } else {
            mpeg::Params::paper()
        }
    }
    fn hashjoin(&self) -> hashjoin::Params {
        if self.small {
            hashjoin::Params::small()
        } else {
            hashjoin::Params::paper()
        }
    }
    fn select(&self) -> select::Params {
        if self.small {
            select::Params::small()
        } else {
            select::Params::paper()
        }
    }
    fn grep(&self) -> grep::Params {
        if self.small {
            grep::Params::small()
        } else {
            grep::Params::paper()
        }
    }
    fn tar(&self) -> tar::Params {
        if self.small {
            tar::Params::small()
        } else {
            tar::Params::paper()
        }
    }
    fn psort(&self) -> psort::Params {
        if self.small {
            psort::Params::small()
        } else {
            psort::Params::paper()
        }
    }
    fn md5(&self, cpus: usize) -> md5app::Params {
        let mut p = if self.small {
            md5app::Params::small()
        } else {
            md5app::Params::paper()
        };
        p.switch_cpus = cpus;
        p
    }
    fn reduce_nodes(&self) -> Vec<usize> {
        if self.small {
            vec![2, 4, 8, 16]
        } else {
            vec![2, 4, 8, 16, 32, 64, 128]
        }
    }
}

fn print_pair(sc: &Scale, name: &str, overall_id: &str, breakdown_id: &str, runs: &[AppRun]) {
    if sc.csv {
        print!("{}", overall_csv(overall_id, runs));
        return;
    }
    println!("{}", overall_table(&format!("{overall_id}: {name}"), runs));
    println!(
        "{}",
        breakdown_table(&format!("{breakdown_id}: {name} breakdown"), runs)
    );
    let (s, sp) = speedups(runs);
    println!("headline: active/normal = {s:.2}x, active+pref/normal+pref = {sp:.2}x\n");
}

fn table1(sc: &Scale) {
    println!("== Table 1: Applications and Problem Sizes ==");
    println!("{:<22} {:>20}", "Application", "Input Data Size (B)");
    println!("{:<22} {:>20}", "MPEG filter", sc.mpeg().video_bytes);
    let hj = sc.hashjoin();
    println!("{:<22} {:>9} x {:>8}", "HashJoin", hj.r_bytes, hj.s_bytes);
    println!("{:<22} {:>20}", "Select", sc.select().table_bytes);
    println!("{:<22} {:>20}", "Grep", sc.grep().file_bytes);
    let t = sc.tar();
    println!("{:<22} {:>20}", "Tar", t.files as u64 * t.file_bytes);
    println!("{:<22} {:>20}", "Parallel sort", sc.psort().total_bytes);
    println!("{:<22} {:>20}", "MD5", sc.md5(1).input_bytes);
    println!("{:<22} {:>20}", "Collective Reduction", 512);
    println!();
}

fn fig_reduce(mode: reduce::Mode, id: &str, name: &str, sc: &Scale) {
    println!("== {id}: {name} ==");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "nodes", "normal (us)", "active (us)", "speedup"
    );
    for p in sc.reduce_nodes() {
        let n = reduce::run(mode, false, p);
        let a = reduce::run(mode, true, p);
        let nu = n.latency.as_ns() as f64 / 1000.0;
        let au = a.latency.as_ns() as f64 / 1000.0;
        println!("{p:<8} {nu:>14.2} {au:>14.2} {:>10.2}", nu / au);
    }
    println!();
}

fn fig17(sc: &Scale) {
    println!("== Figure 17: MD5 with multiple switch CPUs ==");
    let normal = md5app::run(Variant::Normal, &sc.md5(1));
    let normal_p = md5app::run(Variant::NormalPref, &sc.md5(1));
    println!("{:<16} {:>12} {:>10}", "config", "exec", "vs normal");
    let base = normal.exec.as_ps() as f64;
    let base_p = normal_p.exec.as_ps() as f64;
    println!(
        "{:<16} {:>12} {:>10.2}",
        "normal",
        format!("{}", normal.exec),
        1.0
    );
    println!(
        "{:<16} {:>12} {:>10.2}",
        "normal+pref",
        format!("{}", normal_p.exec),
        base / base_p.max(1.0)
    );
    for cpus in [1usize, 2, 4] {
        let a = md5app::run(Variant::Active, &sc.md5(cpus));
        let ap = md5app::run(Variant::ActivePref, &sc.md5(cpus));
        println!(
            "{:<16} {:>12} {:>10.2}",
            format!("active {cpus}cpu"),
            format!("{}", a.exec),
            base / a.exec.as_ps() as f64
        );
        println!(
            "{:<16} {:>12} {:>10.2}",
            format!("active+p {cpus}cpu"),
            format!("{}", ap.exec),
            base_p / ap.exec.as_ps() as f64
        );
    }
    println!();
}

/// Ablation studies of the design choices DESIGN.md calls out: the
/// per-line valid bits (overlap), the ATB (flat addressing), the switch
/// D-cache size (HashJoin's bit-vector), and the host:switch clock
/// ratio.
fn ablations(sc: &Scale) {
    let gp = sc.grep();

    println!("== Ablation A: per-line valid bits (Reduce-to-one, 8 nodes) ==");
    println!("(latency-bound: overlap lets the combine begin while the");
    println!(" vector is still arriving — §3's parallelism argument)");
    let on = reduce::run_with_config(reduce::Mode::ReduceToOne, true, 8, ClusterConfig::paper());
    let mut cfg = ClusterConfig::paper();
    cfg.active.valid_bit_overlap = false;
    let off = reduce::run_with_config(reduce::Mode::ReduceToOne, true, 8, cfg);
    println!("overlap on : {}", on.latency);
    println!(
        "overlap off: {}  (+{:.1}%)",
        off.latency,
        (off.latency.as_ps() as f64 / on.latency.as_ps() as f64 - 1.0) * 100.0
    );
    println!();

    println!("== Ablation B: ATB vs software translation (Reduce-to-one, 8 nodes) ==");
    let mut cfg = ClusterConfig::paper();
    cfg.active.atb_enabled = false;
    let sw_off = reduce::run_with_config(reduce::Mode::ReduceToOne, true, 8, cfg);
    println!("ATB on : {}", on.latency);
    println!(
        "ATB off: {}  (+{:.1}%)",
        sw_off.latency,
        (sw_off.latency.as_ps() as f64 / on.latency.as_ps() as f64 - 1.0) * 100.0
    );
    println!();

    println!("== Ablation C: switch D-cache size (HashJoin, active+pref) ==");
    let jp = sc.hashjoin();
    for kb in [1u64, 4, 16, 64] {
        let mut cfg = ClusterConfig::paper_db();
        cfg.active.cpu.hierarchy.l1d.size_bytes = kb * 1024;
        let r = hashjoin::run_with_config(Variant::ActivePref, &jp, cfg);
        println!(
            "D-cache {kb:>3} KB: exec {}  switch stall {:.1}%",
            r.exec,
            r.switch_breakdowns
                .first()
                .map_or(0.0, |b| b.stall_fraction() * 100.0)
        );
    }
    println!();

    println!("== Ablation D: switch CPU clock (Grep, active+pref) ==");
    for mhz in [250u64, 500, 1000, 2000] {
        let mut cfg = ClusterConfig::paper();
        cfg.active.cpu.hz = mhz * 1_000_000;
        cfg.active.cpu.hierarchy.hz = mhz * 1_000_000;
        let r = grep::run_with_config(Variant::ActivePref, &gp, cfg);
        println!(
            "switch {mhz:>4} MHz: exec {}  switch busy {:.1}%",
            r.exec,
            r.switch_breakdowns.first().map_or(0.0, |b| {
                let t = b.total().as_ps().max(1) as f64;
                b.busy.as_ps() as f64 / t * 100.0
            })
        );
    }
    println!();
}

/// §7's throughput claim: a background job soaks up the host cycles
/// each Grep configuration leaves idle; the makespan shows the effect.
fn multiprog_exp(sc: &Scale) {
    println!("== Multiprogrammed server: Grep + background job ==");
    let p = sc.grep();
    println!(
        "{:<14} {:>14} {:>12} {:>14} {:>12}",
        "bg job", "config", "grep done", "background", "makespan"
    );
    for bg_ms in [2u64, 10, 30] {
        let bg = asan_sim::SimDuration::from_ms(bg_ms);
        for v in [Variant::NormalPref, Variant::ActivePref] {
            let r = multiprog::run(v, &p, bg);
            println!(
                "{:<14} {:>14} {:>12} {:>14} {:>12}",
                format!("{bg_ms} ms"),
                v.label(),
                format!("{}", r.grep_done),
                format!("{}", r.background_done),
                format!("{}", r.makespan),
            );
        }
    }
    println!();
}

/// §6's two-level extension: where should the intelligence live?
fn twolevel(sc: &Scale) {
    println!("== Two-level active I/O: Select, four intelligence placements ==");
    println!(
        "{:<16} {:>12} {:>9} {:>16} {:>14}",
        "placement", "exec", "speedup", "host bytes", "SAN link bytes"
    );
    let p = sc.select();
    let runs: Vec<twolevel::PlacementRun> = twolevel::Placement::ALL
        .iter()
        .map(|&pl| twolevel::run(pl, &p))
        .collect();
    let base = runs[0].exec.as_ps() as f64;
    for r in &runs {
        println!(
            "{:<16} {:>12} {:>8.2}x {:>16} {:>14}",
            r.placement.label(),
            format!("{}", r.exec),
            base / r.exec.as_ps() as f64,
            r.host_traffic,
            r.san_bytes,
        );
    }
    println!();
}

/// Robustness: the benchmarks complete — and still validate — under the
/// seeded chaos fault plan (packet corruption + drops on the storage
/// data plane, soft disk errors, latency spikes).
fn chaos(sc: &Scale) {
    println!("== Chaos: benchmarks under seeded fault injection ==");
    println!("(FaultPlan::chaos — 1% corrupt, 0.5% drop, 2% disk error, 1% spike)");
    println!(
        "{:<14} {:>14} {:>14} {:>10} {:>9}",
        "app", "clean", "chaos", "overhead", "artifact"
    );
    type ChaosApp = Box<dyn Fn(ClusterConfig) -> AppRun>;
    let apps: [(&str, ChaosApp); 3] = [
        ("Grep", {
            let p = sc.grep();
            Box::new(move |cfg| grep::run_with_config(Variant::ActivePref, &p, cfg))
        }),
        ("Select", {
            let p = sc.select();
            Box::new(move |cfg| select::run_with_config(Variant::ActivePref, &p, cfg))
        }),
        ("HashJoin", {
            let p = sc.hashjoin();
            Box::new(move |cfg| hashjoin::run_with_config(Variant::ActivePref, &p, cfg))
        }),
    ];
    for (name, run) in &apps {
        let base = if *name == "HashJoin" {
            ClusterConfig::paper_db()
        } else {
            ClusterConfig::paper()
        };
        let clean = run(base.clone());
        let mut cfg = base;
        cfg.faults = Some(FaultPlan::chaos(0xC4A05));
        let faulted = run(cfg);
        assert_eq!(
            clean.artifact, faulted.artifact,
            "{name}: fault recovery changed the result"
        );
        println!(
            "{:<14} {:>14} {:>14} {:>9.1}% {:>9}",
            name,
            format!("{}", clean.exec),
            format!("{}", faulted.exec),
            (faulted.exec.as_ps() as f64 / clean.exec.as_ps().max(1) as f64 - 1.0) * 100.0,
            "ok",
        );
        // Per-fault-class recovery counts (injected/detected/recovered/
        // degraded) and the recovery mechanisms that absorbed them.
        let f = &faulted.faults;
        println!(
            "  recovery: corrupt {} | drop {} | disk-err {} | disk-lat {} \
             | {} retransmits, {} timeout retries",
            f.packet_corrupt,
            f.packet_drop,
            f.disk_error,
            f.disk_latency,
            f.retransmits,
            f.timeouts,
        );
    }

    // The collective reduction sends host-generated vectors (reliable
    // traffic), so its fault mode is the handler trap: every switch
    // combine engine traps and migrates to a host fallback.
    let clean = reduce::run_with_config(reduce::Mode::ReduceToOne, true, 8, ClusterConfig::paper());
    let mut cfg = ClusterConfig::paper();
    let mut plan = FaultPlan::quiet(0xC4A05);
    plan.handler_traps.push(HandlerTrap {
        node: None,
        handler: reduce::REDUCE_HANDLER.as_u8(),
        at_invocation: 2,
    });
    cfg.faults = Some(plan);
    let trapped = reduce::run_with_config(reduce::Mode::ReduceToOne, true, 8, cfg);
    println!(
        "{:<14} {:>14} {:>14} {:>9.1}% {:>9}",
        "Reduce (trap)",
        format!("{}", clean.latency),
        format!("{}", trapped.latency),
        (trapped.latency.as_ps() as f64 / clean.latency.as_ps().max(1) as f64 - 1.0) * 100.0,
        "ok",
    );
    let f = &trapped.faults;
    println!(
        "  recovery: trap {} | {} fallback packets rerouted through the host",
        f.handler_trap, f.fallback_packets
    );
    println!("(per-class counts are injected/detected/recovered/degraded)");
    println!();
}

/// Reads one region into host memory and finishes.
struct OneRead {
    file: FileId,
    len: u64,
}
impl HostProgram for OneRead {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.read_file(self.file, 0, self.len, Dest::HostBuf { addr: 0x1000_0000 });
    }
    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, _req: ReqId) {
        ctx.finish();
    }
}

/// CI determinism probe: one storage read under a dense fault plan,
/// reduced to the canonical stats digest. Same binary + same seed must
/// print the same digest on every run and every machine; the CI job
/// runs this twice and fails on a mismatch.
fn chaos_digest() {
    const FILE_BYTES: u64 = 256 * 1024;
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let host = b.add_host();
    let tca = b.add_tca();
    b.connect(host, sw, LinkConfig::paper());
    b.connect(tca, sw, LinkConfig::paper());

    let mut cfg = ClusterConfig::paper();
    let mut plan = FaultPlan::chaos(0xD16E57);
    plan.packet_corrupt_prob = 0.05;
    plan.packet_drop_prob = 0.02;
    cfg.faults = Some(plan);

    let mut cl = Cluster::new(b, cfg);
    let data: Vec<u8> = (0..FILE_BYTES).map(|i| (i % 251) as u8).collect();
    let file = cl.add_file(tca, data).expect("add file");
    cl.set_program(
        host,
        Box::new(OneRead {
            file,
            len: FILE_BYTES,
        }),
    )
    .expect("program");
    let report = cl
        .run()
        .expect("chaos run recovers from every injected fault");

    let stats = cl.stats();
    println!("chaos-digest: {:016x}", stats.digest());
    println!("finish: {}  events: {}", report.finish, report.events);
    println!("{}", cl.fault_stats());
}

/// One finished (benchmark × config) run, as collected by the parallel
/// sweep harness: everything `golden`, `metrics` and `perf` need.
struct RunRecord {
    name: &'static str,
    config: &'static str,
    topo: &'static str,
    digest: u64,
    metrics: MetricsReport,
    events: u64,
    peak_queue: u64,
    wall_us: u64,
}

/// Boxes one benchmark run as a pool job producing a [`RunRecord`].
/// A macro (not a function) because `AppRun` and `ReduceRun` share the
/// field names but not a trait.
macro_rules! sweep_job {
    ($jobs:ident, $name:literal, $config:ident, $topo:literal, $run:expr) => {
        $jobs.push(Box::new(move || {
            let (r, secs) = perf::time_wall(|| $run);
            RunRecord {
                name: $name,
                config: $config,
                topo: $topo,
                digest: r.stats_digest,
                metrics: r.metrics,
                events: r.events,
                peak_queue: r.peak_queue,
                wall_us: (secs * 1e6) as u64,
            }
        }) as pool::Job<RunRecord>);
    };
}

/// Runs all nine benchmarks in the `normal` and `active` configurations
/// on the worker pool and returns the 18 records in canonical order
/// (the committed golden-digest order): benchmarks within `normal`,
/// then within `active`. Index-ordered collection makes the order — and
/// thus every report built from it — independent of the worker count.
fn run_sweep(sc: &Scale) -> Vec<RunRecord> {
    let mut jobs: Vec<pool::Job<RunRecord>> = Vec::new();
    for (config, variant) in [("normal", Variant::Normal), ("active", Variant::Active)] {
        let p = sc.mpeg();
        sweep_job!(
            jobs,
            "mpeg",
            config,
            "single-switch",
            mpeg::run(variant, &p)
        );
        let p = sc.hashjoin();
        sweep_job!(
            jobs,
            "hashjoin",
            config,
            "single-switch",
            hashjoin::run(variant, &p)
        );
        let p = sc.select();
        sweep_job!(
            jobs,
            "select",
            config,
            "single-switch",
            select::run(variant, &p)
        );
        let p = sc.grep();
        sweep_job!(
            jobs,
            "grep",
            config,
            "single-switch",
            grep::run(variant, &p)
        );
        let p = sc.tar();
        sweep_job!(jobs, "tar", config, "single-switch", tar::run(variant, &p));
        let p = sc.psort();
        sweep_job!(
            jobs,
            "psort",
            config,
            "single-switch",
            psort::run(variant, &p)
        );
        let p = sc.md5(1);
        sweep_job!(
            jobs,
            "md5",
            config,
            "single-switch",
            md5app::run(variant, &p)
        );
        let active = variant.is_active();
        sweep_job!(
            jobs,
            "reduce-to-one",
            config,
            "fat-tree-r16",
            reduce::run(reduce::Mode::ReduceToOne, active, 8)
        );
        sweep_job!(
            jobs,
            "distributed-reduce",
            config,
            "fat-tree-r16",
            reduce::run(reduce::Mode::Distributed, active, 8)
        );
    }
    pool::run_indexed(jobs, pool::default_workers())
}

/// Golden digests: every benchmark's canonical `ClusterStats::digest()`
/// in the `normal` and `active` configurations. The committed
/// `tests/golden_digests.txt` holds the output of
/// `repro -- --small golden`; CI regenerates and diffs it, so any
/// change that silently perturbs simulation results fails loudly.
fn golden(sc: &Scale) {
    for r in run_sweep(sc) {
        println!("{} {} {:016x}", r.name, r.config, r.digest);
    }
}

/// The observability report: runs all nine benchmarks in the normal and
/// active configurations and prints the per-phase time breakdown plus
/// the latency percentiles (human tables, or the analyzer's JSON
/// document with `--json`).
fn metrics_exp(sc: &Scale) {
    let rows = run_sweep(sc);
    if sc.json {
        let refs: Vec<(&str, &str, &MetricsReport)> = rows
            .iter()
            .map(|r| (r.name, r.config, &r.metrics))
            .collect();
        println!("{}", metrics_json(&refs));
        return;
    }
    let summaries: Vec<BenchMetrics> = rows
        .iter()
        .map(|r| BenchMetrics::from_report(r.name, r.config, &r.metrics))
        .collect();
    println!("{}", phase_breakdown_report(&summaries));
    println!("{}", latency_report(&summaries));
}

/// Perf-regression tracking: times every benchmark run, writes
/// `BENCH_PERF.json` (wall-clock, events/sec, peak queue depth per
/// run) and prints the human table. Wall times are diagnostics — the
/// simulated results of the same sweep are covered by `golden`.
fn perf_exp(sc: &Scale) {
    let workers = pool::default_workers();
    let (records, total_secs) = perf::time_wall(|| run_sweep(sc));
    let samples: Vec<perf::PerfSample> = records
        .iter()
        .map(|r| perf::PerfSample {
            name: r.name.to_string(),
            config: r.config.to_string(),
            topo: r.topo.to_string(),
            wall_us: r.wall_us,
            events: r.events,
            events_per_sec: (r.events * 1_000_000).checked_div(r.wall_us).unwrap_or(0),
            peak_queue: r.peak_queue,
        })
        .collect();
    let text = perf::perf_json(&samples, (total_secs * 1e6) as u64, workers);
    std::fs::write("BENCH_PERF.json", &text).expect("write BENCH_PERF.json");
    let doc = perf::parse_perf_doc(&text).expect("perf document round-trips");
    print!("{}", perf::perf_report(&doc));
    println!("wrote BENCH_PERF.json");
}

/// Multi-switch scale sweep: the collective reduction across node
/// counts × fat-tree radices × handler placements, against the
/// host-side MST baseline on the same fabric. The cells run on the
/// worker pool and are collected in submission order, so the document
/// is byte-identical at any `ASAN_JOBS`.
fn scale_exp(sc: &Scale) {
    let (radices, hosts): (Vec<usize>, Vec<usize>) = if sc.small {
        (vec![4], vec![16, 64])
    } else {
        (vec![4, 16], vec![64, 256, 1024])
    };
    let mut jobs: Vec<pool::Job<u64>> = Vec::new();
    for &radix in &radices {
        for &p in &hosts {
            jobs.push(Box::new(move || {
                reduce::run_scaled(
                    reduce::Mode::ReduceToOne,
                    false,
                    p,
                    radix,
                    HandlerPlacement::Nca,
                )
                .latency
                .as_ps()
            }));
            for placement in HandlerPlacement::ALL {
                jobs.push(Box::new(move || {
                    reduce::run_scaled(reduce::Mode::ReduceToOne, true, p, radix, placement)
                        .latency
                        .as_ps()
                }));
            }
        }
    }
    let mut results = pool::run_indexed(jobs, pool::default_workers()).into_iter();
    let mut samples = Vec::new();
    for &radix in &radices {
        for &p in &hosts {
            let normal_ps = results.next().expect("baseline cell");
            for placement in HandlerPlacement::ALL {
                let active_ps = results.next().expect("active cell");
                samples.push(scale::ScaleSample {
                    hosts: p as u64,
                    topo: format!("fat-tree-r{radix}"),
                    placement: placement.label().to_string(),
                    normal_ps,
                    active_ps,
                });
            }
        }
    }
    if sc.json {
        print!("{}", scale::scale_json(&samples));
        return;
    }
    print!("{}", scale::scale_report(&scale::ScaleDoc { samples }));
    println!();
}

/// Multi-switch golden digests: the collective reduction on a radix-4
/// fat-tree at 64 hosts, every handler placement × result mode, plus
/// the host-side baseline. The committed
/// `tests/golden_digests_fabric.txt` holds this output; CI regenerates
/// and diffs it at ASAN_JOBS 1 and 4 and across snapshot/restore.
fn golden_fabric() {
    const P: usize = 64;
    const RADIX: usize = 4;
    let mut jobs: Vec<pool::Job<(String, u64)>> = Vec::new();
    for mode in [reduce::Mode::ReduceToOne, reduce::Mode::Distributed] {
        jobs.push(Box::new(move || {
            let r = reduce::run_scaled(mode, false, P, RADIX, HandlerPlacement::Nca);
            (
                format!("{}-r{RADIX}-p{P} normal", mode.tag()),
                r.stats_digest,
            )
        }));
        for placement in HandlerPlacement::ALL {
            jobs.push(Box::new(move || {
                let r = reduce::run_scaled(mode, true, P, RADIX, placement);
                (
                    format!("{}-r{RADIX}-p{P} {}", mode.tag(), placement.label()),
                    r.stats_digest,
                )
            }));
        }
    }
    for (name, digest) in pool::run_indexed(jobs, pool::default_workers()) {
        println!("{name} {digest:016x}");
    }
}

/// Flight-recorder showcase: the collective reduce-to-one on a radix-4
/// fat-tree, once with combine handlers at the participants' nearest
/// common ancestors and once all at the root switch. Each run exports
/// a Perfetto trace (`timeline-<tag>.perfetto.json`) via the
/// `ASAN_TRACE` shim, and the pair's metrics document — including the
/// windowed `timeline` section — lands in `timeline.json` under
/// `--results <dir>`. Rendered with `analyze timeline`, the per-link
/// sparklines show the congestion hotspot moving from the spread-out
/// NCA switches to the single root. Runs serially, so every output is
/// byte-identical across reruns and at any `ASAN_JOBS`.
fn timeline_exp(sc: &Scale, results_dir: &str) {
    const RADIX: usize = 4;
    let p = if sc.small { 16 } else { 64 };
    std::fs::create_dir_all(results_dir).expect("create results dir");
    let cases = [
        ("nca", asan_core::HandlerPlacement::Nca),
        ("root", asan_core::HandlerPlacement::Root),
    ];
    let mut reports = Vec::new();
    // A reduction finishes in tens of microseconds; narrow the window
    // from the 10 us default so the recorder resolves its phases.
    let mut cfg = ClusterConfig::paper();
    cfg.timeline_window = asan_sim::SimDuration::from_ns(500);
    for (tag, placement) in cases {
        let trace_path = format!("{results_dir}/timeline-{tag}.perfetto.json");
        env::set_var("ASAN_TRACE", &trace_path);
        let r = reduce::run_scaled_with_config(
            reduce::Mode::ReduceToOne,
            true,
            p,
            RADIX,
            placement,
            cfg.clone(),
        );
        env::remove_var("ASAN_TRACE");
        println!(
            "reduce-to-one r{RADIX} p{p} {tag}: latency {}, wrote {trace_path}",
            r.latency
        );
        reports.push((tag, r.metrics));
    }
    let rows: Vec<(&str, &str, &MetricsReport)> = reports
        .iter()
        .map(|(tag, m)| ("reduce-to-one", *tag, m))
        .collect();
    let doc = metrics_json(&rows);
    let json_path = format!("{results_dir}/timeline.json");
    std::fs::write(&json_path, &doc).expect("write timeline.json");
    let parsed = parse_metrics_doc(&doc).expect("timeline document round-trips");
    print!("{}", timeline_report(&parsed));
    println!("wrote {json_path}");
}

/// Boxes one benchmark run as a *re-runnable* sweep cell (the driver
/// re-invokes it on retry after a transient failure).
macro_rules! sweep_cell {
    ($cells:ident, $name:expr, $config:expr, $run:expr) => {
        $cells.push(sweep_drv::Cell {
            name: $name.to_string(),
            config: $config.to_string(),
            run: Box::new(move || {
                let r = $run;
                sweep_drv::CellResult {
                    digest: r.stats_digest,
                    events: r.events,
                    peak_queue: r.peak_queue,
                }
            }),
        });
    };
}

/// The sweep grid: the 18 golden (benchmark × config) cells plus the
/// parameter axes of Figures 15–17 — MD5 switch-CPU counts and
/// reduction node counts.
fn sweep_cells(sc: &Scale) -> Vec<sweep_drv::Cell> {
    let mut cells = Vec::new();
    for (config, variant) in [("normal", Variant::Normal), ("active", Variant::Active)] {
        let p = sc.mpeg();
        sweep_cell!(cells, "mpeg", config, mpeg::run(variant, &p));
        let p = sc.hashjoin();
        sweep_cell!(cells, "hashjoin", config, hashjoin::run(variant, &p));
        let p = sc.select();
        sweep_cell!(cells, "select", config, select::run(variant, &p));
        let p = sc.grep();
        sweep_cell!(cells, "grep", config, grep::run(variant, &p));
        let p = sc.tar();
        sweep_cell!(cells, "tar", config, tar::run(variant, &p));
        let p = sc.psort();
        sweep_cell!(cells, "psort", config, psort::run(variant, &p));
        let p = sc.md5(1);
        sweep_cell!(cells, "md5", config, md5app::run(variant, &p));
        let active = variant.is_active();
        sweep_cell!(
            cells,
            "reduce-to-one",
            config,
            reduce::run(reduce::Mode::ReduceToOne, active, 8)
        );
        sweep_cell!(
            cells,
            "distributed-reduce",
            config,
            reduce::run(reduce::Mode::Distributed, active, 8)
        );
    }
    for k in [2usize, 4] {
        let p = sc.md5(k);
        sweep_cell!(
            cells,
            "md5",
            format!("active-k{k}"),
            md5app::run(Variant::Active, &p)
        );
    }
    for p in sc.reduce_nodes() {
        sweep_cell!(
            cells,
            "reduce-to-one",
            format!("normal-p{p}"),
            reduce::run(reduce::Mode::ReduceToOne, false, p)
        );
        sweep_cell!(
            cells,
            "reduce-to-one",
            format!("active-p{p}"),
            reduce::run(reduce::Mode::ReduceToOne, true, p)
        );
        sweep_cell!(
            cells,
            "distributed-reduce",
            format!("active-p{p}"),
            reduce::run(reduce::Mode::Distributed, true, p)
        );
    }
    cells
}

/// The fault-tolerant parameter sweep. Cell records go to stdout in
/// canonical order (deterministic at any worker count and across
/// kill/resume); the cache-hit summary goes to stderr because it
/// legitimately differs between a fresh run and a resumed one.
fn sweep_exp(sc: &Scale, dir: &str) {
    let cfg = sweep_drv::SweepConfig::new(dir);
    let outcome = sweep_drv::run(sweep_cells(sc), &cfg).expect("sweep results dir is writable");
    println!("== Sweep: {} cells ==", outcome.records.len());
    for rec in &outcome.records {
        println!(
            "{:<20} {:<12} {:016x} {:>9} ev {:>5} pq",
            rec.name, rec.config, rec.result.digest, rec.result.events, rec.result.peak_queue
        );
    }
    println!("results: {dir}/sweep_results.json");
    eprintln!(
        "sweep: {} cached, {} computed, {} retries (workers = {})",
        outcome.cached, outcome.computed, outcome.retries, cfg.workers
    );
}

/// Re-runs this binary with `golden` under the given environment,
/// returning its stdout.
fn golden_child(sc: &Scale, envs: &[(&str, &str)]) -> String {
    let exe = env::current_exe().expect("own binary path");
    let mut cmd = std::process::Command::new(exe);
    if sc.small {
        cmd.arg("--small");
    }
    cmd.arg("golden");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn golden child");
    assert!(
        out.status.success(),
        "golden child {envs:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("digest output is UTF-8")
}

/// Crash-safety check across real process boundaries: the golden sweep
/// must print byte-identical digests when run plain, when paused +
/// snapshotted + restored in-process, and when restored from the saved
/// snapshot files in a fresh process.
fn snapcheck(sc: &Scale) {
    let dir = env::temp_dir().join(format!("asan-snapcheck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("snapshot dir");
    let dir_s = dir.to_str().expect("UTF-8 temp path");

    let plain = golden_child(sc, &[]);
    let paused = golden_child(
        sc,
        &[
            ("ASAN_SNAPSHOT_EVENTS", "500"),
            ("ASAN_SNAPSHOT_SAVE", dir_s),
        ],
    );
    let restored = golden_child(sc, &[("ASAN_SNAPSHOT_LOAD", dir_s)]);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(plain, paused, "pause+restore changed a golden digest");
    assert_eq!(
        plain, restored,
        "fresh-process restore changed a golden digest"
    );
    println!(
        "snapcheck: {} digests identical across plain / paused / fresh-process restore",
        plain.lines().count()
    );
}

/// Warmed-start check: snapshot a paused golden sweep once, then fork
/// several continuations from the same snapshot files at different
/// worker counts — every fork must print byte-identical digests.
fn fork_exp(sc: &Scale) {
    let dir = env::temp_dir().join(format!("asan-fork-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("snapshot dir");
    let dir_s = dir.to_str().expect("UTF-8 temp path");

    let warmed = golden_child(
        sc,
        &[
            ("ASAN_SNAPSHOT_EVENTS", "500"),
            ("ASAN_SNAPSHOT_SAVE", dir_s),
        ],
    );
    let forks = ["1", "2", "4"];
    for jobs in forks {
        let fork = golden_child(sc, &[("ASAN_SNAPSHOT_LOAD", dir_s), ("ASAN_JOBS", jobs)]);
        assert_eq!(
            warmed, fork,
            "fork at ASAN_JOBS={jobs} diverged from the warmed run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "fork: {} continuations byte-identical from one warmed snapshot set",
        forks.len()
    );
}

fn table2() {
    println!("== Table 2: Collective Reduction semantics ==");
    for p in [4usize, 8] {
        let want = reduce::reference_sum(p);
        // The simulation validates every delivered lane internally; a
        // passing run is the semantic check.
        reduce::run(reduce::Mode::Distributed, true, p);
        reduce::run(reduce::Mode::ReduceToOne, true, p);
        reduce::run(reduce::Mode::ToAll, true, p);
        println!(
            "p={p}: Distr. Reduce, Reduce-to-one and Reduce-to-all verified \
             against the scalar reference (lane0 = {})",
            u32::from_le_bytes(want[0..4].try_into().unwrap())
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let metrics_flag = args.iter().any(|a| a == "--metrics");
    let sc = Scale { small, csv, json };
    let results_dir = args
        .iter()
        .position(|a| a == "--results")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "sweep-results".to_string());
    let mut skip_next = false;
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--results" {
                skip_next = true;
                return false;
            }
            *a != "--small" && *a != "--csv" && *a != "--json" && *a != "--metrics"
        })
        .map(String::as_str)
        .collect();
    if metrics_flag {
        wanted.push("metrics");
    }
    let wanted: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        vec![
            "table1", "fig3", "fig5", "fig7", "fig9", "fig11", "fig13", "fig15", "fig16", "fig17",
            "table2", "chaos",
        ]
    } else {
        wanted
    };

    for w in wanted {
        match w {
            "table1" => table1(&sc),
            "fig3" | "fig4" => {
                let runs = sweep(|v| mpeg::run(v, &sc.mpeg()));
                print_pair(&sc, "MPEG-Filter", "Figure 3", "Figure 4", &runs);
            }
            "fig5" | "fig6" => {
                let runs = sweep(|v| hashjoin::run(v, &sc.hashjoin()));
                print_pair(&sc, "HashJoin", "Figure 5", "Figure 6", &runs);
            }
            "fig7" | "fig8" => {
                let runs = sweep(|v| select::run(v, &sc.select()));
                print_pair(&sc, "Select", "Figure 7", "Figure 8", &runs);
            }
            "fig9" | "fig10" => {
                let runs = sweep(|v| grep::run(v, &sc.grep()));
                print_pair(&sc, "Grep", "Figure 9", "Figure 10", &runs);
            }
            "fig11" | "fig12" => {
                let runs = sweep(|v| tar::run(v, &sc.tar()));
                print_pair(&sc, "Tar", "Figure 11", "Figure 12", &runs);
            }
            "fig13" | "fig14" => {
                let runs = sweep(|v| psort::run(v, &sc.psort()));
                print_pair(&sc, "Parallel Sort", "Figure 13", "Figure 14", &runs);
            }
            "fig15" => fig_reduce(
                reduce::Mode::ReduceToOne,
                "Figure 15",
                "Collective Reduce-to-one",
                &sc,
            ),
            "fig16" => fig_reduce(
                reduce::Mode::Distributed,
                "Figure 16",
                "Collective Distributed Reduce",
                &sc,
            ),
            "fig17" => fig17(&sc),
            "table2" => table2(),
            "ablations" => ablations(&sc),
            "chaos" => chaos(&sc),
            "chaos-digest" => chaos_digest(),
            "metrics" => metrics_exp(&sc),
            "golden" => golden(&sc),
            "golden-fabric" => golden_fabric(),
            "timeline" => timeline_exp(&sc, &results_dir),
            "perf" => perf_exp(&sc),
            "scale" => scale_exp(&sc),
            "sweep" => sweep_exp(&sc, &results_dir),
            "snapcheck" => snapcheck(&sc),
            "fork" => fork_exp(&sc),
            "twolevel" => twolevel(&sc),
            "multiprog" => multiprog_exp(&sc),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}
