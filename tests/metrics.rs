//! Observability integration tests: trace sinks must never perturb
//! simulation results, sinks must capture well-formed spans, and the
//! metrics report must be populated for real benchmark runs.

use asan_core::cluster::{Cluster, ClusterConfig, Dest, FileId, HostCtx, HostMsg, HostProgram};
use asan_core::handler::{Handler, HandlerCtx};
use asan_core::metrics::MetricsReport;
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, LinkConfig, NodeId};
use asan_sim::perfetto::PerfettoSink;
use asan_sim::series::{KIND_LINK_UTIL, KIND_QUEUE_DEPTH};
use asan_sim::trace::{JsonlSink, NullSink, RingSink, SpanKind, TraceSink};

use asan_apps::runner::Variant;
use asan_apps::{grep, reduce};

/// Counts matching bytes on the switch, sends only the count home.
struct CountHandler {
    host: NodeId,
    count: u64,
    total: u64,
    expect: u64,
}
impl Handler for CountHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let data = ctx.payload();
        ctx.charge_stream(data.len(), 2);
        self.count += data.iter().filter(|&&b| b == b'x').count() as u64;
        self.total += data.len() as u64;
        if self.total >= self.expect {
            ctx.send(self.host, None, 0, &self.count.to_le_bytes());
        }
    }
}

/// Issues an active (mapped) read and waits for the handler's answer.
struct ActiveCount {
    file: FileId,
    sw: NodeId,
}
impl HostProgram for ActiveCount {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let len = ctx.file_len(self.file);
        ctx.read_file(
            self.file,
            0,
            len,
            Dest::Mapped {
                node: self.sw,
                handler: HandlerId::new(1),
                base_addr: 0,
            },
        );
    }
    fn on_message(&mut self, ctx: &mut HostCtx<'_>, _msg: &HostMsg) {
        ctx.finish();
    }
}

const FILE_BYTES: usize = 16 * 1024;

/// One host + one TCA + one active switch running a count handler: the
/// smallest cluster that produces packet, handler, disk, and buffer
/// spans in a single run.
fn build_active_cluster() -> Cluster {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let h = b.add_host();
    let t = b.add_tca();
    b.connect(h, sw, LinkConfig::paper());
    b.connect(t, sw, LinkConfig::paper());
    let mut cl = Cluster::new(b, ClusterConfig::paper());
    let data: Vec<u8> = (0..FILE_BYTES)
        .map(|i| if i % 7 == 0 { b'x' } else { b'.' })
        .collect();
    let file = cl.add_file(t, data).unwrap();
    cl.register_handler(
        sw,
        HandlerId::new(1),
        Box::new(CountHandler {
            host: h,
            count: 0,
            total: 0,
            expect: FILE_BYTES as u64,
        }),
    )
    .unwrap();
    cl.set_program(h, Box::new(ActiveCount { file, sw }))
        .unwrap();
    cl
}

/// Runs the reference cluster with the given sink (or none) and
/// returns the stats digest and the metrics report.
fn run_with_sink(sink: Option<Box<dyn TraceSink>>) -> (u64, MetricsReport) {
    let mut cl = build_active_cluster();
    if let Some(s) = sink {
        cl.set_trace_sink(s);
    }
    let report = cl.run().unwrap();
    (cl.stats().digest(), cl.metrics(&report))
}

/// Tracing must be invisible to the simulation: the stats digest and
/// every metrics histogram (and the timeline folded into the metrics
/// digest) are bit-identical whether spans are discarded (no sink /
/// null sink) or recorded (ring / JSONL / Perfetto sink).
#[test]
fn digests_identical_across_all_sinks() {
    let jsonl_path =
        std::env::temp_dir().join(format!("asan-metrics-{}.jsonl", std::process::id()));
    let perfetto_path =
        std::env::temp_dir().join(format!("asan-metrics-{}.perfetto.json", std::process::id()));
    let (d_none, m_none) = run_with_sink(None);
    let (d_null, m_null) = run_with_sink(Some(Box::new(NullSink)));
    let (d_ring, m_ring) = run_with_sink(Some(Box::new(RingSink::new(1 << 16))));
    let (d_jsonl, m_jsonl) = run_with_sink(Some(Box::new(JsonlSink::create(&jsonl_path).unwrap())));
    let (d_perfetto, m_perfetto) =
        run_with_sink(Some(Box::new(PerfettoSink::create(&perfetto_path))));
    assert_eq!(d_none, d_null, "null sink perturbed the stats digest");
    assert_eq!(d_none, d_ring, "ring sink perturbed the stats digest");
    assert_eq!(d_none, d_jsonl, "jsonl sink perturbed the stats digest");
    assert_eq!(
        d_none, d_perfetto,
        "perfetto sink perturbed the stats digest"
    );
    assert_eq!(
        m_none.digest(),
        m_null.digest(),
        "null sink perturbed metrics"
    );
    assert_eq!(
        m_none.digest(),
        m_ring.digest(),
        "ring sink perturbed metrics"
    );
    assert_eq!(
        m_none.digest(),
        m_jsonl.digest(),
        "jsonl sink perturbed metrics"
    );
    assert_eq!(
        m_none.digest(),
        m_perfetto.digest(),
        "perfetto sink perturbed metrics"
    );
    let _ = std::fs::remove_file(&jsonl_path);
    let _ = std::fs::remove_file(&perfetto_path);
}

/// The windowed time-series is always on: every run carries link and
/// queue-depth tracks, and the timeline is identical with and without
/// a sink installed.
#[test]
fn timeline_is_always_on_and_sink_independent() {
    let (_, m_none) = run_with_sink(None);
    let (_, m_ring) = run_with_sink(Some(Box::new(RingSink::new(1 << 16))));
    let tl = &m_none.timeline;
    assert_eq!(
        tl.window_ps,
        ClusterConfig::paper().timeline_window.as_ps(),
        "window comes from the cluster config"
    );
    assert!(
        tl.tracks_of(KIND_LINK_UTIL).next().is_some(),
        "no link-utilization track"
    );
    let q = tl
        .tracks_of(KIND_QUEUE_DEPTH)
        .next()
        .expect("no queue-depth track");
    assert!(
        q.samples.iter().any(|&v| v > 0),
        "queue gauge never sampled"
    );
    assert_eq!(tl, &m_ring.timeline, "sink changed the timeline");
}

/// Traced runs carry causal ids: every span of the active pipeline
/// belongs to a nonzero trace, and link/stall child spans reference
/// their packet span as parent.
#[test]
fn spans_carry_causal_trace_ids() {
    let mut cl = build_active_cluster();
    cl.set_trace_sink(Box::new(RingSink::new(1 << 16)));
    cl.run().unwrap();
    let ring = cl
        .trace_sink()
        .and_then(|s| s.as_any())
        .and_then(|a| a.downcast_ref::<RingSink>())
        .expect("ring sink");
    let spans: Vec<_> = ring.spans().copied().collect();
    let packet_ids: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Packet)
        .map(|s| s.id)
        .collect();
    assert!(!packet_ids.is_empty());
    let mut saw_link_child = false;
    for s in &spans {
        match s.kind {
            SpanKind::Packet | SpanKind::Handler | SpanKind::Buffer => {
                assert_ne!(s.trace_id, 0, "untraced {:?} span: {s:?}", s.kind);
            }
            SpanKind::Link | SpanKind::Stall => {
                assert!(
                    packet_ids.contains(&s.parent),
                    "{:?} span not parented to a packet span: {s:?}",
                    s.kind
                );
                saw_link_child = true;
            }
            SpanKind::Disk => {} // archive writes aggregate chunks: untraced
        }
    }
    assert!(saw_link_child, "no per-hop link spans recorded");
    // The storage read of the mapped request is traced.
    assert!(
        spans
            .iter()
            .any(|s| s.kind == SpanKind::Disk && s.trace_id != 0),
        "storage read span untraced"
    );
}

/// The ring sink captures well-formed spans of every kind the active
/// storage pipeline produces, in nondecreasing start order.
#[test]
fn ring_sink_captures_well_formed_spans() {
    let mut cl = build_active_cluster();
    cl.set_trace_sink(Box::new(RingSink::new(1 << 16)));
    cl.run().unwrap();
    let ring = cl
        .trace_sink()
        .and_then(|s| s.as_any())
        .and_then(|a| a.downcast_ref::<RingSink>())
        .expect("installed sink should downcast to RingSink");
    assert!(!ring.is_empty(), "no spans recorded");
    let mut kinds = std::collections::BTreeSet::new();
    for span in ring.spans() {
        assert!(
            span.end >= span.start,
            "span ends before it starts: {span:?}"
        );
        kinds.insert(span.kind.label());
    }
    for kind in [
        SpanKind::Packet,
        SpanKind::Handler,
        SpanKind::Disk,
        SpanKind::Buffer,
    ] {
        assert!(
            kinds.contains(kind.label()),
            "no {} span recorded (got {kinds:?})",
            kind.label()
        );
    }
}

/// Every line the JSONL sink writes is a parseable JSON object with
/// the documented fields.
#[test]
fn jsonl_sink_writes_parseable_lines() {
    let path = std::env::temp_dir().join(format!("asan-spans-{}.jsonl", std::process::id()));
    let mut cl = build_active_cluster();
    cl.set_trace_sink(Box::new(JsonlSink::create(&path).unwrap()));
    cl.run().unwrap();
    drop(cl); // flush on drop
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "jsonl sink wrote nothing");
    for line in text.lines() {
        let v = asan_bench::json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        for key in [
            "kind", "node", "id", "start_ps", "end_ps", "bytes", "trace", "parent",
        ] {
            assert!(v.get(key).is_some(), "span line missing {key:?}: {line}");
        }
        let start = v
            .get("start_ps")
            .and_then(asan_bench::json::Value::as_u64)
            .unwrap();
        let end = v
            .get("end_ps")
            .and_then(asan_bench::json::Value::as_u64)
            .unwrap();
        assert!(end >= start, "span ends before it starts: {line}");
    }
}

/// Real benchmark runs populate the metrics report: packets and disk
/// service in every configuration, handler occupancy only when the
/// switches are active, and a nonzero phase breakdown.
#[test]
fn benchmarks_populate_metrics_report() {
    for variant in [Variant::Normal, Variant::Active] {
        let r = grep::run(variant, &grep::Params::small());
        let m = &r.metrics;
        assert!(m.packet_e2e.count() > 0, "{variant:?}: no packet spans");
        assert!(m.disk_service.count() > 0, "{variant:?}: no disk spans");
        assert!(m.phases.total_ps > 0, "{variant:?}: empty total");
        assert!(m.phases.host_ps > 0, "{variant:?}: empty host phase");
        assert!(m.phases.fabric_ps > 0, "{variant:?}: empty fabric phase");
        assert!(m.phases.storage_ps > 0, "{variant:?}: empty storage phase");
        if variant.is_active() {
            assert!(
                m.handler_occupancy.count() > 0,
                "active run recorded no handler spans"
            );
            assert!(
                m.phases.handler_ps > 0,
                "active run has empty handler phase"
            );
        } else {
            assert_eq!(
                m.handler_occupancy.count(),
                0,
                "normal run recorded handler spans"
            );
        }
        for (span, h) in m.latencies() {
            if h.count() == 0 {
                continue;
            }
            let (p50, p90, p99) = (h.percentile(50), h.percentile(90), h.percentile(99));
            assert!(
                p50 <= p90 && p90 <= p99 && p99 <= h.max(),
                "{variant:?}/{span}: percentiles out of order"
            );
            assert!(
                h.min() <= h.mean() && h.mean() <= h.max(),
                "{variant:?}/{span}: mean outside range"
            );
        }
    }
}

/// The collective-reduction runs carry a metrics report too, and the
/// active tree shows handler occupancy while the normal MST does not.
#[test]
fn reduce_runs_carry_metrics() {
    let normal = reduce::run(reduce::Mode::ReduceToOne, false, 8);
    let active = reduce::run(reduce::Mode::ReduceToOne, true, 8);
    assert!(normal.metrics.packet_e2e.count() > 0);
    assert_eq!(normal.metrics.handler_occupancy.count(), 0);
    assert!(active.metrics.handler_occupancy.count() > 0);
    assert!(active.metrics.phases.total_ps > 0);
}
