//! Known-bad: two rotten escape hatches. The first directive suppresses
//! nothing (the wall-clock read it once justified is long gone); the
//! second names a rule that does not exist, so it never suppressed
//! anything. Both pre-silence whatever lands on those lines next.

// asan-lint: allow(no-wall-clock)
pub fn quiet() -> u64 {
    7
}

// asan-lint: allow(no-wall-clok)
pub fn typoed() -> u64 {
    9
}
