//! The address translation buffer (ATB).
//!
//! §3: "we introduce a direct-mapped ATB that maps a memory address into
//! a buffer ID and offset pair, creating the illusion of a flat memory
//! for switch programmers … each switch CPU has its own 16-entry ATB
//! (one entry per data buffer) that also assists with data buffer
//! de-allocation. When a handler needs to release data buffers, it
//! simply provides an address to the ATB, which translates it into the
//! buffer IDs that map all valid addresses less than the given address."
//!
//! Entries are direct-mapped by `(addr / 512) % 16`, exploiting the
//! streaming ("in order") arrival of mapped data: consecutive MTU-sized
//! chunks of a mapped file land in consecutive ATB slots.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;

use crate::buffer::{BufId, BUFFER_BYTES};

/// Number of ATB entries (one per data buffer in the paper).
pub const ATB_ENTRIES: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Base address of the mapped 512 B window.
    base: u32,
    buf: BufId,
}

/// A per-switch-CPU, direct-mapped address translation buffer.
///
/// # Example
///
/// ```
/// use asan_core::atb::Atb;
/// use asan_core::buffer::BufId;
///
/// let mut atb = Atb::new();
/// atb.map(0x1000, BufId(3));
/// assert_eq!(atb.translate(0x1005), Some((BufId(3), 5)));
/// assert_eq!(atb.translate(0x2000), None);
/// ```
#[derive(Debug)]
pub struct Atb {
    entries: [Option<Entry>; ATB_ENTRIES],
    hits: Counter,
    misses: Counter,
    conflict_evictions: Counter,
}

impl Atb {
    /// Creates an empty ATB.
    pub fn new() -> Self {
        Atb {
            entries: [None; ATB_ENTRIES],
            hits: Counter::default(),
            misses: Counter::default(),
            conflict_evictions: Counter::default(),
        }
    }

    #[inline]
    fn slot(addr: u32) -> usize {
        (addr as usize / BUFFER_BYTES) % ATB_ENTRIES
    }

    /// Maps the 512 B window at `base` (the header's address field) to
    /// data buffer `buf`. Returns the buffer previously occupying the
    /// slot, if a live mapping was evicted (a conflict — the dispatch
    /// unit must have freed it first in a correct run).
    pub fn map(&mut self, base: u32, buf: BufId) -> Option<BufId> {
        debug_assert_eq!(
            base as usize % BUFFER_BYTES,
            0,
            "mapped windows are MTU-aligned"
        );
        let slot = Self::slot(base);
        let old = self.entries[slot].map(|e| e.buf);
        if old.is_some() {
            self.conflict_evictions.inc();
        }
        self.entries[slot] = Some(Entry { base, buf });
        old
    }

    /// Translates `addr` to a `(buffer, offset)` pair, if mapped.
    pub fn translate(&mut self, addr: u32) -> Option<(BufId, usize)> {
        let base = addr - (addr % BUFFER_BYTES as u32);
        let slot = Self::slot(base);
        match self.entries[slot] {
            Some(e) if e.base == base => {
                self.hits.inc();
                Some((e.buf, (addr - base) as usize))
            }
            _ => {
                self.misses.inc();
                None
            }
        }
    }

    /// Checks a mapping without counting statistics.
    pub fn probe(&self, addr: u32) -> Option<(BufId, usize)> {
        let base = addr - (addr % BUFFER_BYTES as u32);
        match self.entries[Self::slot(base)] {
            Some(e) if e.base == base => Some((e.buf, (addr - base) as usize)),
            _ => None,
        }
    }

    /// Implements `Deallocate_Buffer(end)`: removes every mapping whose
    /// window lies entirely below `end`, returning the freed buffer IDs
    /// (the DBA releases them).
    pub fn deallocate_below(&mut self, end: u32) -> Vec<BufId> {
        let mut freed = Vec::new();
        for e in &mut self.entries {
            if let Some(entry) = e {
                if (entry.base as u64) + BUFFER_BYTES as u64 <= end as u64 {
                    freed.push(entry.buf);
                    *e = None;
                }
            }
        }
        freed.sort();
        freed
    }

    /// Removes the mapping of the window containing `addr`, if any.
    pub fn unmap(&mut self, addr: u32) -> Option<BufId> {
        let base = addr - (addr % BUFFER_BYTES as u32);
        let slot = Self::slot(base);
        match self.entries[slot] {
            Some(e) if e.base == base => {
                self.entries[slot] = None;
                Some(e.buf)
            }
            _ => None,
        }
    }

    /// Live mappings.
    pub fn mapped_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Translation hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Translation misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Mappings evicted by a conflicting `map` (should be zero in
    /// correct streaming runs).
    pub fn conflict_evictions(&self) -> u64 {
        self.conflict_evictions.get()
    }

    /// Writes every live mapping and the translation counters.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        for e in &self.entries {
            match e {
                Some(entry) => {
                    w.bool(true);
                    w.u32(entry.base);
                    w.u8(entry.buf.0);
                }
                None => w.bool(false),
            }
        }
        self.hits.snapshot(w);
        self.misses.snapshot(w);
        self.conflict_evictions.snapshot(w);
    }

    /// Overwrites this ATB's mappings and counters from a snapshot.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for e in &mut self.entries {
            *e = if r.bool()? {
                let base = r.u32()?;
                let buf = BufId(r.u8()?);
                Some(Entry { base, buf })
            } else {
                None
            };
        }
        self.hits = Counter::restore(r)?;
        self.misses = Counter::restore(r)?;
        self.conflict_evictions = Counter::restore(r)?;
        Ok(())
    }
}

impl Default for Atb {
    fn default() -> Self {
        Atb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_roundtrip() {
        let mut atb = Atb::new();
        atb.map(0x4000, BufId(7));
        assert_eq!(atb.translate(0x4000), Some((BufId(7), 0)));
        assert_eq!(atb.translate(0x41FF), Some((BufId(7), 511)));
        assert_eq!(atb.translate(0x4200), None);
        assert_eq!(atb.hits(), 2);
        assert_eq!(atb.misses(), 1);
    }

    #[test]
    fn sixteen_consecutive_windows_coexist() {
        let mut atb = Atb::new();
        for i in 0..16u32 {
            assert_eq!(atb.map(i * 512, BufId(i as u8)), None);
        }
        assert_eq!(atb.mapped_count(), 16);
        for i in 0..16u32 {
            assert_eq!(atb.probe(i * 512 + 100), Some((BufId(i as u8), 100)));
        }
        // The 17th window conflicts with the 1st (direct-mapped).
        assert_eq!(atb.map(16 * 512, BufId(0)), Some(BufId(0)));
        assert_eq!(atb.conflict_evictions(), 1);
    }

    #[test]
    fn deallocate_below_frees_prefix() {
        let mut atb = Atb::new();
        for i in 0..4u32 {
            atb.map(i * 512, BufId(i as u8));
        }
        // Free everything below 1024: windows 0 and 1.
        let freed = atb.deallocate_below(1024);
        assert_eq!(freed, vec![BufId(0), BufId(1)]);
        assert_eq!(atb.probe(0), None);
        assert_eq!(atb.probe(512), None);
        assert!(atb.probe(1024).is_some());
        // A partial window (end inside window 2) frees nothing more.
        assert!(atb.deallocate_below(1025).is_empty());
        assert_eq!(atb.deallocate_below(2048), vec![BufId(2), BufId(3)]);
    }

    #[test]
    fn unmap_specific_window() {
        let mut atb = Atb::new();
        atb.map(0x8000, BufId(2));
        assert_eq!(atb.unmap(0x8010), Some(BufId(2)));
        assert_eq!(atb.unmap(0x8010), None);
    }

    #[test]
    fn streaming_pattern_never_conflicts_within_window_reuse() {
        // Simulate the paper's streaming pattern: map window i, process,
        // deallocate, map window i+16 into the same slot.
        let mut atb = Atb::new();
        for i in 0..100u32 {
            let base = i * 512;
            if i >= 16 {
                // Streaming handler deallocated older windows already.
                let _ = atb.deallocate_below(base - 15 * 512);
            }
            assert_eq!(atb.map(base, BufId((i % 16) as u8)), None, "window {i}");
        }
        assert_eq!(atb.conflict_evictions(), 0);
    }
}
