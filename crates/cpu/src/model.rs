//! In-order, single-issue CPU timing model.
//!
//! The paper's host processor (§4) is a MIPS-like single-issue core at
//! 2 GHz whose memory behaviour dominates: loads block until the first
//! double-word returns, stores/prefetches are non-blocking up to four
//! outstanding cache lines, and I/D TLB misses are charged. All of that
//! lives in [`asan_mem::MemoryHierarchy`]; this type adds instruction
//! accounting (1 cycle per instruction), instruction fetch through the
//! L1I over a configurable hot-code footprint, and the busy/stall/idle
//! breakdown reported in the paper's figures.
//!
//! The same type models the embedded 500 MHz switch processor (with the
//! switch hierarchy config and a smaller code footprint).

use asan_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::TimeBreakdown;
use asan_sim::{SimDuration, SimTime};

/// Static configuration of a CPU core.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Clock frequency in Hz.
    pub hz: u64,
    /// Memory hierarchy serving this core.
    pub hierarchy: HierarchyConfig,
    /// Base address of the code region instruction fetches walk.
    pub code_base: u64,
    /// Size of the hot code footprint in bytes; fetch wraps around it.
    pub code_bytes: u64,
    /// Bytes per instruction (4 for the MIPS-like ISA).
    pub instr_bytes: u64,
}

impl CpuConfig {
    /// The paper's 2 GHz host CPU with a default 16 KB hot-code footprint.
    pub fn host() -> Self {
        CpuConfig {
            hz: 2_000_000_000,
            hierarchy: HierarchyConfig::host(),
            code_base: 0x0040_0000,
            code_bytes: 16 * 1024,
            instr_bytes: 4,
        }
    }

    /// Host CPU with the database-scaled cache hierarchy (HashJoin/Select).
    pub fn host_db() -> Self {
        CpuConfig {
            hierarchy: HierarchyConfig::host_db(),
            ..CpuConfig::host()
        }
    }

    /// The paper's 500 MHz embedded switch CPU; handlers are small, so
    /// the default footprint is 2 KB (fits the 4 KB I-cache).
    pub fn switch_cpu() -> Self {
        CpuConfig {
            hz: 500_000_000,
            hierarchy: HierarchyConfig::switch_cpu(),
            code_base: 0x0010_0000,
            code_bytes: 2 * 1024,
            instr_bytes: 4,
        }
    }

    /// Duration of `n` cycles at this core's clock.
    pub fn cycles(&self, n: u64) -> SimDuration {
        SimDuration::cycles(n, self.hz)
    }
}

/// An in-order CPU core with its private memory hierarchy and local time.
///
/// Application drivers call the charge methods ([`compute`], [`load`],
/// [`store`], [`prefetch`], [`scan`]) as they process real data; each
/// advances the core's local clock and files the elapsed time under
/// *busy* or *stall*. The cluster scheduler moves the clock forward with
/// [`idle_until`] when the core waits for I/O or messages.
///
/// [`compute`]: Cpu::compute
/// [`load`]: Cpu::load
/// [`store`]: Cpu::store
/// [`prefetch`]: Cpu::prefetch
/// [`scan`]: Cpu::scan
/// [`idle_until`]: Cpu::idle_until
///
/// # Example
///
/// ```
/// use asan_cpu::{Cpu, CpuConfig};
/// use asan_sim::SimTime;
///
/// let mut cpu = Cpu::new(CpuConfig::host());
/// cpu.compute(1000);          // 1000 instructions = 500 ns at 2 GHz
/// cpu.load(0xA000);           // cold miss: stall time accrues
/// assert!(cpu.breakdown().busy.as_ns() >= 500);
/// assert!(cpu.breakdown().stall.as_ns() > 0);
/// ```
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig, // asan-lint: allow(snapshot-completeness)
    mem: MemoryHierarchy,
    now: SimTime,
    breakdown: TimeBreakdown,
    /// Instruction-fetch cursor within the code footprint.
    fetch_cursor: u64,
    /// Instructions retired.
    instructions: u64,
    /// Proven at construction: the whole code footprint is resident in
    /// the L1I (and I-TLB), and the footprint geometry is line-aligned,
    /// so instruction fetches can be bulk-accounted without walking the
    /// cache model line by line. Cleared whenever the hierarchy is
    /// handed out mutably, since external mutation could evict lines.
    warm_code: bool,
}

impl Cpu {
    /// Creates a core at time zero with a *warm instruction cache*: the
    /// hot-code footprint is pre-resident, as it would be for any
    /// measured steady-state region (the benchmarks time application
    /// phases, not program startup). Data caches start cold.
    pub fn new(cfg: CpuConfig) -> Self {
        let mut mem = MemoryHierarchy::new(cfg.hierarchy.clone());
        let line = cfg.hierarchy.l1i.line_bytes;
        let mut addr = cfg.code_base;
        while addr < cfg.code_base + cfg.code_bytes {
            mem.ifetch(addr, SimTime::ZERO);
            addr += line;
        }
        // The fast path's segment arithmetic assumes footprint wrap
        // lands on a line boundary; both paper configs satisfy this.
        let aligned = cfg.code_base.is_multiple_of(line) && cfg.code_bytes.is_multiple_of(line);
        let warm_code = aligned && mem.ifetch_resident(cfg.code_base, cfg.code_bytes);
        // Forget the warm-up traffic in the statistics.
        let mut cpu = Cpu {
            mem,
            now: SimTime::ZERO,
            breakdown: TimeBreakdown::default(),
            fetch_cursor: 0,
            instructions: 0,
            warm_code,
            cfg,
        };
        cpu.mem.reset_access_stats();
        cpu
    }

    /// The core's configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Current local time of this core.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Busy/stall/idle breakdown accumulated so far.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The memory hierarchy, for statistics inspection.
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Mutable access to the hierarchy (used by the cluster to model DMA
    /// traffic that invalidates or touches lines). External mutation
    /// could evict code lines, so this conservatively drops back to the
    /// line-by-line instruction-fetch path.
    pub fn memory_mut(&mut self) -> &mut MemoryHierarchy {
        self.warm_code = false;
        &mut self.mem
    }

    fn charge_busy(&mut self, d: SimDuration) {
        self.now += d;
        self.breakdown.busy += d;
    }

    fn charge_stall(&mut self, d: SimDuration) {
        self.now += d;
        self.breakdown.stall += d;
    }

    /// Fetches `n` instructions through the L1I, walking the hot-code
    /// footprint; returns the fetch-stall charged.
    fn fetch(&mut self, n: u64) {
        let line = self.cfg.hierarchy.l1i.line_bytes;
        let mut remaining_bytes = n * self.cfg.instr_bytes;
        if remaining_bytes == 0 {
            return;
        }
        if self.warm_code {
            // Residency was proven at construction and nothing else
            // touches the L1I/I-TLB, so every line access below would
            // hit with zero stall. Bulk-account the exact number of
            // line-sized accesses the loop would make: the walk starts
            // at offset `cursor % line` into a line and wrap coincides
            // with a line boundary (alignment checked at construction).
            let fetches = (self.fetch_cursor % line + remaining_bytes).div_ceil(line);
            self.mem.ifetch_warm(fetches);
            self.fetch_cursor = (self.fetch_cursor + remaining_bytes) % self.cfg.code_bytes;
            return;
        }
        while remaining_bytes > 0 {
            let addr = self.cfg.code_base + self.fetch_cursor;
            let line_off = addr % line;
            let in_line = (line - line_off).min(remaining_bytes);
            let out = self.mem.ifetch(addr, self.now);
            if out.stall > SimDuration::ZERO {
                self.charge_stall(out.stall);
            }
            self.fetch_cursor = (self.fetch_cursor + in_line) % self.cfg.code_bytes;
            remaining_bytes -= in_line;
        }
    }

    /// Executes `instrs` ALU/branch instructions (1 cycle each), fetching
    /// them through the I-cache.
    pub fn compute(&mut self, instrs: u64) {
        if instrs == 0 {
            return;
        }
        self.fetch(instrs);
        self.instructions += instrs;
        self.charge_busy(self.cfg.cycles(instrs));
    }

    /// Executes a load instruction from `addr` (blocking on miss).
    pub fn load(&mut self, addr: u64) {
        self.fetch(1);
        self.instructions += 1;
        self.charge_busy(self.cfg.cycles(1));
        let out = self.mem.load(addr, self.now);
        self.charge_stall(out.stall);
    }

    /// Executes a store instruction to `addr` (non-blocking while MSHRs
    /// are free).
    pub fn store(&mut self, addr: u64) {
        self.fetch(1);
        self.instructions += 1;
        self.charge_busy(self.cfg.cycles(1));
        let out = self.mem.store(addr, self.now);
        self.charge_stall(out.stall);
    }

    /// Executes a software prefetch of `addr`.
    pub fn prefetch(&mut self, addr: u64) {
        self.fetch(1);
        self.instructions += 1;
        self.charge_busy(self.cfg.cycles(1));
        let out = self.mem.prefetch(addr, self.now);
        self.charge_stall(out.stall);
    }

    /// Streams over `[base, base + bytes)` in `stride`-byte elements,
    /// charging `instr_per_elem` compute instructions and one load (or
    /// store when `write`) per element.
    ///
    /// This is the workhorse for record-scanning loops; it is exactly
    /// equivalent to calling [`compute`](Cpu::compute) and
    /// [`load`](Cpu::load) in a loop, just more convenient.
    pub fn scan(&mut self, base: u64, bytes: u64, stride: u64, instr_per_elem: u64, write: bool) {
        assert!(stride > 0, "zero stride");
        let mut off = 0;
        while off < bytes {
            self.compute(instr_per_elem);
            if write {
                self.store(base + off);
            } else {
                self.load(base + off);
            }
            off += stride;
        }
    }

    /// Touches every cache line in `[base, base + bytes)` once (bulk copy
    /// or checksum-style access), charging `instr_per_line` per line.
    pub fn touch_lines(&mut self, base: u64, bytes: u64, instr_per_line: u64, write: bool) {
        let line = self.cfg.hierarchy.l1d.line_bytes;
        let first = base / line * line;
        let last = (base + bytes).div_ceil(line) * line;
        self.scan(first, last - first, line, instr_per_line, write);
    }

    /// Advances local time to `t`, filing the gap as idle. No-op if the
    /// core is already past `t`.
    pub fn idle_until(&mut self, t: SimTime) {
        if t > self.now {
            self.breakdown.idle += t.since(self.now);
            self.now = t;
        }
    }

    /// Advances local time to `t`, filing the gap as memory/data stall
    /// (used by the active switch for data-buffer valid-bit stalls).
    pub fn stall_until(&mut self, t: SimTime) {
        if t > self.now {
            self.breakdown.stall += t.since(self.now);
            self.now = t;
        }
    }

    /// Advances local time to `t`, filing the gap as *busy* (used for
    /// fixed-cost OS work like interrupt processing, which executes
    /// instructions we do not model individually).
    pub fn busy_until(&mut self, t: SimTime) {
        if t > self.now {
            self.breakdown.busy += t.since(self.now);
            self.now = t;
        }
    }

    /// Charges a fixed amount of busy time (modeled OS overhead).
    pub fn charge_fixed_busy(&mut self, d: SimDuration) {
        self.charge_busy(d);
    }

    /// Resets time and statistics but keeps cache contents (used between
    /// measurement phases).
    pub fn reset_accounting(&mut self) {
        self.now = SimTime::ZERO;
        self.breakdown = TimeBreakdown::default();
        self.instructions = 0;
    }

    /// Writes the core's dynamic state: local clock, time breakdown,
    /// fetch cursor, retired-instruction count, the warm-code flag and
    /// the full memory hierarchy (cache tags, TLB residency, DRAM rows,
    /// MSHRs).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("cpu");
        w.time(self.now);
        self.breakdown.snapshot(w);
        w.u64(self.fetch_cursor);
        w.u64(self.instructions);
        w.bool(self.warm_code);
        self.mem.snapshot(w);
    }

    /// Overwrites this core's dynamic state from a snapshot taken of a
    /// core with the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("cpu")?;
        self.now = r.time()?;
        self.breakdown = TimeBreakdown::restore(r)?;
        self.fetch_cursor = r.u64()?;
        self.instructions = r.u64()?;
        self.warm_code = r.bool()?;
        self.mem.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Cpu {
        Cpu::new(CpuConfig::host())
    }

    #[test]
    fn compute_charges_one_cycle_per_instruction() {
        let mut c = host();
        c.compute(2000);
        // 2000 cycles at 2 GHz = 1000 ns busy; fetch may add stalls but
        // not busy time.
        assert_eq!(c.breakdown().busy.as_ns(), 1000);
        assert_eq!(c.instructions(), 2000);
    }

    #[test]
    fn code_footprint_is_warm_from_construction() {
        // Cores measure steady-state phases: the hot-code footprint is
        // pre-resident, so instruction fetch never stalls while the
        // footprint fits the L1I.
        let mut c = host();
        c.compute(2 * 16 * 1024 / 4); // two full laps
        assert_eq!(c.breakdown().stall, SimDuration::ZERO);
        // A footprint larger than the 32 KB L1I does stall.
        let mut big = Cpu::new(CpuConfig {
            code_bytes: 128 * 1024,
            ..CpuConfig::host()
        });
        big.compute(2 * 128 * 1024 / 4);
        assert!(big.breakdown().stall.as_ns() > 0, "thrashing footprint");
    }

    #[test]
    fn load_miss_files_stall_not_busy() {
        let mut c = host();
        c.compute(16 * 1024 / 4 * 2); // warm the code footprint
        let busy0 = c.breakdown().busy;
        let stall0 = c.breakdown().stall;
        c.load(0x8000_0000);
        assert_eq!((c.breakdown().busy - busy0).as_ps(), 500); // 1 cycle
        assert!((c.breakdown().stall - stall0).as_ns() > 100);
    }

    #[test]
    fn stores_overlap_loads_do_not() {
        // Disable TLBs so the page-table walk (paid by loads and stores
        // alike) does not mask the MSHR overlap effect under test.
        let no_tlb = || {
            let mut cfg = CpuConfig::host();
            cfg.hierarchy.itlb = None;
            cfg.hierarchy.dtlb = None;
            Cpu::new(cfg)
        };
        let mut a = no_tlb();
        let mut b = no_tlb();
        let t0a = a.now();
        for i in 0..4u64 {
            a.store(0x9000_0000 + i * 4096);
        }
        let store_time = a.now().since(t0a);
        let t0b = b.now();
        for i in 0..4u64 {
            b.load(0x9000_0000 + i * 4096);
        }
        let load_time = b.now().since(t0b);
        assert!(
            store_time < load_time / 2,
            "stores ({store_time}) should overlap far better than loads ({load_time})"
        );
    }

    #[test]
    fn scan_equivalent_to_manual_loop() {
        let mut a = host();
        let mut b = host();
        a.scan(0x1000, 1024, 64, 10, false);
        for i in 0..16u64 {
            b.compute(10);
            b.load(0x1000 + i * 64);
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.breakdown(), b.breakdown());
    }

    #[test]
    fn touch_lines_covers_unaligned_ranges() {
        let mut c = host();
        let loads0 = c.memory().stats().loads;
        // 100 bytes starting mid-line spans 3 lines (offset 32..132).
        c.touch_lines(0x1020, 100, 1, false);
        assert_eq!(c.memory().stats().loads - loads0, 3);
    }

    #[test]
    fn idle_accrues_only_forward() {
        let mut c = host();
        c.compute(100);
        let t = c.now();
        c.idle_until(t + SimDuration::from_us(5));
        assert_eq!(c.breakdown().idle, SimDuration::from_us(5));
        c.idle_until(SimTime::ZERO); // no-op
        assert_eq!(c.breakdown().idle, SimDuration::from_us(5));
    }

    #[test]
    fn busy_until_files_busy() {
        let mut c = host();
        c.busy_until(SimTime::from_us(30)); // the paper's per-request OS cost
        assert_eq!(c.breakdown().busy, SimDuration::from_us(30));
        assert!((c.breakdown().utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn switch_cpu_runs_4x_slower() {
        let mut h = host();
        let mut s = Cpu::new(CpuConfig::switch_cpu());
        h.compute(1000);
        s.compute(1000);
        assert_eq!(h.breakdown().busy * 4, s.breakdown().busy);
    }

    #[test]
    fn breakdown_total_equals_now() {
        let mut c = host();
        c.compute(500);
        c.load(0x5000);
        c.store(0x6000);
        c.idle_until(c.now() + SimDuration::from_us(1));
        assert_eq!(c.breakdown().total(), c.now().since(SimTime::ZERO));
    }

    #[test]
    fn prefetch_hides_latency_for_later_loads() {
        let mut warm = host();
        let mut cold = host();
        // Prefetch well in advance, then idle past the fill.
        warm.prefetch(0xA000_0000);
        warm.idle_until(warm.now() + SimDuration::from_us(2));
        cold.idle_until(cold.now() + SimDuration::from_us(2));
        let s0 = warm.breakdown().stall;
        warm.load(0xA000_0000);
        let warm_stall = warm.breakdown().stall - s0;
        let c0 = cold.breakdown().stall;
        cold.load(0xA000_0000);
        let cold_stall = cold.breakdown().stall - c0;
        assert_eq!(warm_stall, SimDuration::ZERO, "prefetched line should hit");
        assert!(cold_stall.as_ns() > 50);
    }

    #[test]
    fn scan_write_mode_uses_stores() {
        let mut c = host();
        let stores0 = c.memory().stats().stores;
        c.scan(0x2000_0000, 1024, 128, 5, true);
        assert_eq!(c.memory().stats().stores - stores0, 8);
        assert_eq!(c.memory().stats().loads, 0);
    }

    #[test]
    fn fetch_cursor_wraps_footprint() {
        // Many small computes must keep fetching without growing the
        // cursor past the footprint.
        let mut c = Cpu::new(CpuConfig::switch_cpu());
        for _ in 0..10_000 {
            c.compute(3);
        }
        // Warm footprint: no ifetch stalls at steady state.
        assert_eq!(c.breakdown().stall, SimDuration::ZERO);
        assert_eq!(c.instructions(), 30_000);
    }

    #[test]
    fn warm_fetch_fast_path_matches_slow_path_exactly() {
        // `memory_mut` drops the fast path, so `slow` walks the cache
        // model line by line while `fast` bulk-accounts. Every counter
        // and every picosecond must agree.
        for cfg in [CpuConfig::host(), CpuConfig::switch_cpu()] {
            let mut fast = Cpu::new(cfg.clone());
            let mut slow = Cpu::new(cfg);
            let _ = slow.memory_mut();
            for &n in &[1u64, 3, 15, 16, 17, 1000, 4097] {
                fast.compute(n);
                slow.compute(n);
                fast.load(0x8000_0000 + n * 8);
                slow.load(0x8000_0000 + n * 8);
            }
            assert_eq!(fast.now(), slow.now());
            assert_eq!(fast.breakdown(), slow.breakdown());
            assert_eq!(
                fast.memory().stats().ifetches,
                slow.memory().stats().ifetches
            );
            let (f, s) = (fast.memory().l1i().stats(), slow.memory().l1i().stats());
            assert_eq!(f.hits.get(), s.hits.get());
            assert_eq!(f.misses.get(), s.misses.get());
            let tlb_hits = |c: &Cpu| c.memory().itlb().map(|t| t.stats().hits.get());
            assert_eq!(tlb_hits(&fast), tlb_hits(&slow));
        }
    }

    #[test]
    fn oversized_footprint_disables_fast_path() {
        // A footprint that cannot be L1I-resident must take (and keep
        // taking) the stalling slow path.
        let mut big = Cpu::new(CpuConfig {
            code_bytes: 128 * 1024,
            ..CpuConfig::host()
        });
        big.compute(128 * 1024 / 4);
        assert!(big.breakdown().stall.as_ns() > 0);
    }

    #[test]
    fn snapshot_restores_clock_caches_and_fast_path() {
        use asan_sim::snap::{SnapReader, SnapWriter};
        for cfg in [CpuConfig::host(), CpuConfig::switch_cpu()] {
            let mut c = Cpu::new(cfg.clone());
            c.compute(1234);
            c.scan(0x3000_0000, 4096, 64, 7, false);
            c.store(0x3000_2000);
            c.idle_until(c.now() + SimDuration::from_us(3));

            let mut w = SnapWriter::new();
            c.snapshot(&mut w);
            let bytes = w.into_bytes();
            let mut back = Cpu::new(cfg);
            let mut r = SnapReader::new(&bytes).unwrap();
            back.restore(&mut r).unwrap();
            r.finish().unwrap();

            assert_eq!(back.now(), c.now());
            assert_eq!(back.breakdown(), c.breakdown());
            assert_eq!(back.instructions(), c.instructions());
            // Continue both: identical timing picosecond for picosecond,
            // including warm-fetch bulk accounting and D-cache residency.
            for &n in &[5u64, 100, 4099] {
                c.compute(n);
                back.compute(n);
                c.load(0x3000_0000 + n * 8);
                back.load(0x3000_0000 + n * 8);
            }
            assert_eq!(back.now(), c.now());
            assert_eq!(back.breakdown(), c.breakdown());
            assert_eq!(back.memory().stats().ifetches, c.memory().stats().ifetches);
        }
    }

    #[test]
    fn snapshot_preserves_disabled_fast_path() {
        use asan_sim::snap::{SnapReader, SnapWriter};
        let mut c = host();
        let _ = c.memory_mut(); // drops to the line-by-line fetch path
        c.compute(64);
        let mut w = SnapWriter::new();
        c.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = host(); // constructs with warm_code = true
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();
        c.compute(10_000);
        back.compute(10_000);
        assert_eq!(back.now(), c.now());
        assert_eq!(
            back.memory().l1i().stats().hits.get(),
            c.memory().l1i().stats().hits.get()
        );
    }

    #[test]
    fn reset_accounting_keeps_cache_state() {
        let mut c = host();
        c.load(0x7000);
        c.reset_accounting();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.breakdown().total(), SimDuration::ZERO);
        c.load(0x7000);
        // Warm cache: only the 1-cycle busy charge, no stall.
        assert_eq!(c.breakdown().stall, SimDuration::ZERO);
    }
}
