//! Perfetto / Chrome `trace_event` JSON exporter.
//!
//! [`PerfettoSink`] buffers every span of a run and, on flush, writes
//! one self-contained JSON document in the Chrome `trace_event` array
//! format (loadable in `ui.perfetto.dev` or `chrome://tracing`).
//!
//! # Export contract
//!
//! The output is **byte-reproducible**: two runs of the same
//! configuration produce byte-identical files, and CI diffs exactly
//! that. The contract that makes this hold:
//!
//! * Every event is a complete-duration event (`"ph":"X"`).
//! * `ts` and `dur` are **integral simulated picoseconds** — no floats,
//!   no unit conversion, no wall clock. (Perfetto nominally renders
//!   `ts` as microseconds; the absolute numbers on its axis are
//!   therefore scaled, but relative structure — ordering, nesting,
//!   proportions — is exact. The trade is deliberate: integers diff,
//!   floats drift.)
//! * `pid` is the simulated node id the span is attributed to, so each
//!   node renders as one process track.
//! * `tid` is the stable [`SpanKind::index`](crate::trace::SpanKind)
//!   of the span's kind, so packets, handlers, disk service, buffers,
//!   hops and stalls each get their own row per node.
//! * Events are emitted sorted by `(start, node, kind index, span id)`
//!   — a total order independent of emission interleaving.
//! * `args` carries the span id, byte count, and causal identity
//!   (`trace`, `parent`) so flows can be followed across rows.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::trace::{Span, TraceSink};

/// Renders spans (sorted per the export contract) as one Chrome
/// `trace_event` JSON document.
pub fn render(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start, s.node, s.kind.index(), s.id));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"bytes\":{},\"trace\":{},\
             \"parent\":{}}}}}",
            s.kind.label(),
            s.start.as_ps(),
            s.end.as_ps().saturating_sub(s.start.as_ps()),
            s.node,
            s.kind.index(),
            s.id,
            s.bytes,
            s.trace_id,
            s.parent,
        ));
    }
    out.push_str("]}\n");
    out
}

/// A trace sink exporting the whole run as one Perfetto/Chrome
/// `trace_event` JSON file, written atomically-in-one-write on flush.
///
/// The file is created (truncating) at flush time, so several clusters
/// flushing to the same path in one process leave the *last* run's
/// trace — matching the "one run, one trace file" usage of the
/// `ASAN_TRACE=<name>.json` shim.
#[derive(Debug)]
pub struct PerfettoSink {
    path: PathBuf,
    spans: Vec<Span>,
    written: bool,
}

impl PerfettoSink {
    /// Creates a sink that will write `path` on flush. The path itself
    /// is not touched until then.
    pub fn create(path: impl AsRef<Path>) -> Self {
        PerfettoSink {
            path: path.as_ref().to_path_buf(),
            spans: Vec::new(),
            written: false,
        }
    }

    /// Number of spans buffered so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span has been buffered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn write_out(&mut self) -> io::Result<()> {
        let doc = render(&self.spans);
        let mut f = File::create(&self.path)?;
        f.write_all(doc.as_bytes())?;
        self.written = true;
        Ok(())
    }
}

impl TraceSink for PerfettoSink {
    fn record(&mut self, span: &Span) {
        self.spans.push(*span);
        self.written = false;
    }

    fn flush(&mut self) {
        // A trace must never abort the simulation: I/O errors are
        // swallowed here, exactly like the JSONL sink.
        let _ = self.write_out();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl Drop for PerfettoSink {
    fn drop(&mut self) {
        if !self.written {
            let _ = self.write_out();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::trace::SpanKind;

    fn span(kind: SpanKind, id: u64, start_ns: u64) -> Span {
        Span {
            kind,
            node: 2,
            id,
            start: SimTime::from_ns(start_ns),
            end: SimTime::from_ns(start_ns + 5),
            bytes: 100,
            trace_id: 1,
            parent: 0,
        }
    }

    #[test]
    fn rendered_event_shape_is_pinned() {
        let doc = render(&[span(SpanKind::Packet, 7, 10)]);
        assert_eq!(
            doc,
            "{\"traceEvents\":[{\"name\":\"packet\",\"cat\":\"span\",\"ph\":\"X\",\
             \"ts\":10000,\"dur\":5000,\"pid\":2,\"tid\":0,\"args\":{\"id\":7,\
             \"bytes\":100,\"trace\":1,\"parent\":0}}]}\n"
        );
    }

    #[test]
    fn events_sort_by_start_node_kind_id() {
        let mut spans = vec![
            span(SpanKind::Handler, 3, 20),
            span(SpanKind::Packet, 1, 20),
            span(SpanKind::Packet, 0, 5),
        ];
        spans[0].node = 1; // earlier node sorts first at equal start
        let doc = render(&spans);
        let i_first = doc.find("\"id\":0").unwrap();
        let i_handler = doc.find("\"name\":\"handler\"").unwrap();
        let i_packet20 = doc.find("\"id\":1").unwrap();
        assert!(i_first < i_handler, "t=5ns span leads");
        assert!(
            i_handler < i_packet20,
            "node 1 precedes node 2 at equal start"
        );
        // Render is insensitive to buffer order.
        let mut rev = spans.clone();
        rev.reverse();
        assert_eq!(doc, render(&rev));
    }

    #[test]
    fn sink_writes_byte_identical_files() {
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("asan-perfetto-a-{}.json", std::process::id()));
        let p2 = dir.join(format!("asan-perfetto-b-{}.json", std::process::id()));
        for p in [&p1, &p2] {
            let mut s = PerfettoSink::create(p);
            s.record(&span(SpanKind::Packet, 0, 5));
            s.record(&span(SpanKind::Disk, 1, 7));
            s.flush();
        }
        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p2).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn drop_flushes_unwritten_spans() {
        let path =
            std::env::temp_dir().join(format!("asan-perfetto-drop-{}.json", std::process::id()));
        {
            let mut s = PerfettoSink::create(&path);
            s.record(&span(SpanKind::Buffer, 4, 1));
            assert!(!s.is_empty());
            assert_eq!(s.len(), 1);
            // No explicit flush: Drop must write the file.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"buffer\""));
        let _ = std::fs::remove_file(&path);
    }
}
