//! Corrected twin: every numeric counter — including those in nested
//! snapshot structs, in both digest roots — reaches its digest.

pub struct LinkSnapshot {
    pub bytes: u64,
    pub stalls: u64,
}

pub struct ClusterStats {
    pub events: u64,
    pub retries: u64,
    pub link: LinkSnapshot,
}

impl ClusterStats {
    pub fn digest(&self) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, self.events);
        h = fold(h, self.retries);
        h = fold(h, self.link.bytes);
        fold(h, self.link.stalls)
    }
}

pub struct MetricsReport {
    pub total_ps: u64,
    pub dropped_spans: u64,
}

impl MetricsReport {
    pub fn digest(&self) -> u64 {
        let h = fold(0xcbf2_9ce4_8422_2325, self.total_ps);
        fold(h, self.dropped_spans)
    }
}
